//! Streaming Monte Carlo engine: a persistent worker pool that drives a
//! compiled task's batch evaluator through fixed-size sample blocks and
//! folds every block into merge-order-invariant online accumulators.
//!
//! ## Determinism contract
//!
//! Three properties combine so a run's report is **bit-identical at any
//! worker count**:
//!
//! 1. each block's samples come from a [`BlockRng`](crate::sample::BlockRng)
//!    keyed only by `(seed, block_index)` — never by thread identity;
//! 2. workers claim whole blocks from a shared atomic counter (coarse
//!    work-stealing), so a block's *contents* do not depend on who runs it;
//! 3. the per-worker [`YieldAccumulator`]s are merge-order invariant (see
//!    `accum`): integer counters commute exactly, and floating-point
//!    Welford partials are folded in canonical block order at the end.
//!
//! Memory is O(blocks) for the Welford partials plus O(block_size) scratch
//! per worker — no per-sample vector is ever materialized, so a 10⁷-sample
//! run costs the same resident memory as a 10⁴-sample one.
//!
//! ## Pool lifecycle
//!
//! Threads spawn once in [`McEngine::new`] and park on a condvar between
//! jobs; each [`McEngine::run`] publishes one job (epoch bump), waits for
//! all workers to check in, and merges their accumulators. Workers build
//! their [`BlockWorker`] (evaluators + scratch) once at spawn and reuse it
//! across every job — the pattern `awesym-serve`'s per-request spawning
//! left on the table (see ROADMAP).

use crate::accum::{QuantileGrid, Summary, YieldAccumulator};
use awesym_obs::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One unit of work: which block, how many samples it holds, and the run
/// seed. Fully determines the block's sample stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Block index within the run (keys the RNG stream).
    pub index: u64,
    /// Samples in this block (the final block may be short).
    pub count: usize,
    /// The run seed.
    pub seed: u64,
}

/// Per-thread execution state for a task: owns evaluators and scratch,
/// turns a [`BlockSpec`] into that block's sample values.
pub trait BlockWorker {
    /// Fills `out` with the block's `count` sample values. Invalid samples
    /// are represented as NaN (or any non-finite / non-positive value) —
    /// the accumulator counts and excludes them.
    fn run_block(&mut self, block: BlockSpec, out: &mut Vec<f64>);
}

/// A compiled Monte Carlo task: something that can mint per-thread
/// workers borrowing its compiled artifacts.
pub trait McTask: Send + Sync {
    /// The per-thread worker, borrowing evaluators from `self`.
    type Worker<'a>: BlockWorker
    where
        Self: 'a;
    /// Builds one worker. Called once per pool thread at spawn; the
    /// worker is reused across jobs.
    fn make_worker(&self) -> Self::Worker<'_>;
}

/// Run parameters for one Monte Carlo job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Total samples to draw.
    pub samples: u64,
    /// Samples per block. Larger blocks amortize tape dispatch; smaller
    /// blocks steal more evenly. 4096 is a good default for tapes in the
    /// 10²–10³ op range.
    pub block_size: usize,
    /// Run seed.
    pub seed: u64,
    /// Pass/fail deadline for the yield counter (same unit as the sample
    /// values, i.e. seconds for delay tasks). `None` disables yield.
    pub deadline: Option<f64>,
    /// Quantile histogram grid.
    pub grid: QuantileGrid,
}

impl McConfig {
    /// Default block size (see [`McConfig::block_size`]).
    pub const DEFAULT_BLOCK: usize = 4096;

    /// A config with the default block size and no deadline.
    pub fn new(samples: u64, seed: u64, grid: QuantileGrid) -> Self {
        McConfig {
            samples,
            block_size: Self::DEFAULT_BLOCK,
            seed,
            deadline: None,
            grid,
        }
    }

    /// Sets the deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the block size.
    ///
    /// # Panics
    ///
    /// Panics when `block_size == 0`.
    #[must_use]
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        self.block_size = block_size;
        self
    }

    fn n_blocks(&self) -> u64 {
        self.samples.div_ceil(self.block_size as u64)
    }
}

/// A finished run: the statistical [`Summary`] plus throughput facts.
#[derive(Debug, Clone, PartialEq)]
pub struct McReport {
    /// Merged online statistics.
    pub summary: Summary,
    /// Wall-clock seconds for the job (excludes compile time).
    pub wall_secs: f64,
    /// Samples per wall-clock second.
    pub samples_per_sec: f64,
    /// Worker threads in the pool.
    pub workers: usize,
}

/// One published job. Workers read everything through the `Arc`; the
/// atomic counter is the work-stealing frontier.
struct Job {
    cfg: McConfig,
    next_block: Arc<AtomicU64>,
    n_blocks: u64,
}

/// Pool state guarded by one mutex: the current job (bumped epoch
/// publishes it), the shutdown flag, and the per-job result inbox.
struct Slot {
    epoch: u64,
    shutdown: bool,
    job: Option<Job>,
    done: usize,
    results: Vec<YieldAccumulator>,
}

struct Shared {
    slot: Mutex<Slot>,
    start: Condvar,
    finish: Condvar,
}

/// Persistent-pool streaming Monte Carlo engine over a compiled task.
///
/// Spawns its worker threads once at construction; [`McEngine::run`] can
/// then be called any number of times (e.g. a benchmark's repetitions)
/// without paying thread or evaluator setup again. Dropping the engine
/// shuts the pool down.
pub struct McEngine<T: McTask + 'static> {
    task: Arc<T>,
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    metrics: EngineMetrics,
}

/// The engine's observability surface (all registered on the caller's
/// [`Registry`]).
struct EngineMetrics {
    blocks: Arc<awesym_obs::Counter>,
    samples: Arc<awesym_obs::Counter>,
    merges: Arc<awesym_obs::Counter>,
    block_ns: Arc<awesym_obs::Histogram>,
    samples_per_sec: Arc<awesym_obs::Gauge>,
}

/// Block-latency histogram edges: 1 µs … 100 ms in decade-ish steps.
const BLOCK_NS_EDGES: &[u64] = &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

impl<T: McTask + 'static> McEngine<T> {
    /// Spawns a pool of `workers` threads over `task`. Each thread builds
    /// its [`BlockWorker`] immediately and parks until the first job.
    ///
    /// Metrics (`mc_blocks_total`, `mc_samples_total`, `mc_merges_total`,
    /// `mc_block_ns`, `mc_samples_per_sec`) register on `registry`.
    ///
    /// # Panics
    ///
    /// Panics when `workers == 0`.
    pub fn new(task: Arc<T>, workers: usize, registry: &Registry) -> Self {
        assert!(workers > 0, "engine needs at least one worker");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                shutdown: false,
                job: None,
                done: 0,
                results: Vec::new(),
            }),
            start: Condvar::new(),
            finish: Condvar::new(),
        });
        let metrics = EngineMetrics {
            blocks: registry.counter("mc_blocks_total"),
            samples: registry.counter("mc_samples_total"),
            merges: registry.counter("mc_merges_total"),
            block_ns: registry.histogram("mc_block_ns", BLOCK_NS_EDGES),
            samples_per_sec: registry.gauge("mc_samples_per_sec"),
        };
        let handles = (0..workers)
            .map(|_| {
                let task = Arc::clone(&task);
                let shared = Arc::clone(&shared);
                let blocks_c = Arc::clone(&metrics.blocks);
                let samples_c = Arc::clone(&metrics.samples);
                let block_ns = Arc::clone(&metrics.block_ns);
                std::thread::spawn(move || {
                    worker_loop(&*task, &shared, &blocks_c, &samples_c, &block_ns);
                })
            })
            .collect();
        McEngine {
            task,
            shared,
            handles,
            metrics,
        }
    }

    /// The task this engine runs.
    pub fn task(&self) -> &T {
        &self.task
    }

    /// Number of pool threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one Monte Carlo job to completion and returns the merged
    /// report. Blocks the calling thread; the pool does the work.
    pub fn run(&self, cfg: &McConfig) -> McReport {
        assert!(cfg.block_size > 0, "block size must be positive");
        let t0 = Instant::now();
        let n_blocks = cfg.n_blocks();
        let workers = self.handles.len();
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.job = Some(Job {
                cfg: *cfg,
                next_block: Arc::new(AtomicU64::new(0)),
                n_blocks,
            });
            slot.done = 0;
            slot.results = Vec::with_capacity(workers);
            slot.epoch += 1;
            self.shared.start.notify_all();
            // Wait for every worker to deposit its accumulator.
            while slot.done < workers {
                slot = self.shared.finish.wait(slot).unwrap();
            }
            slot.job = None;
            let mut results = std::mem::take(&mut slot.results);
            drop(slot);

            // Deterministic merge: worker deposit order varies run to run,
            // but the accumulator's merge is order-invariant by
            // construction, so any order yields bit-identical results.
            let mut acc = results.pop().expect("at least one worker result");
            for other in &results {
                acc.merge(other);
                self.metrics.merges.inc();
            }
            let summary = acc.finish();
            let wall_secs = t0.elapsed().as_secs_f64();
            let samples_per_sec = if wall_secs > 0.0 {
                summary.samples as f64 / wall_secs
            } else {
                0.0
            };
            self.metrics.samples_per_sec.set(samples_per_sec as i64);
            McReport {
                summary,
                wall_secs,
                samples_per_sec,
                workers,
            }
        }
    }
}

impl<T: McTask + 'static> Drop for McEngine<T> {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker that panicked already poisoned the run it was part
            // of; surface it here rather than swallowing.
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

/// The body each pool thread runs: build the worker once, then serve jobs
/// until shutdown.
fn worker_loop<T: McTask>(
    task: &T,
    shared: &Shared,
    blocks_c: &awesym_obs::Counter,
    samples_c: &awesym_obs::Counter,
    block_ns: &awesym_obs::Histogram,
) {
    let mut worker = task.make_worker();
    let mut buf: Vec<f64> = Vec::new();
    let mut seen_epoch = 0u64;
    loop {
        // Park until a new job epoch (or shutdown) appears.
        let (cfg, next_block, n_blocks) = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    let job = slot.job.as_ref().expect("epoch bump publishes a job");
                    break (job.cfg, Arc::clone(&job.next_block), job.n_blocks);
                }
                slot = shared.start.wait(slot).unwrap();
            }
        };

        let mut acc = YieldAccumulator::new(cfg.grid, cfg.deadline);
        loop {
            let b = next_block.fetch_add(1, Ordering::Relaxed);
            if b >= n_blocks {
                break;
            }
            let remaining = cfg.samples - b * cfg.block_size as u64;
            let count = (cfg.block_size as u64).min(remaining) as usize;
            let t0 = Instant::now();
            worker.run_block(
                BlockSpec {
                    index: b,
                    count,
                    seed: cfg.seed,
                },
                &mut buf,
            );
            debug_assert_eq!(buf.len(), count, "worker filled the block");
            acc.push_block(b, &buf);
            block_ns.observe(t0.elapsed().as_nanos() as u64);
            blocks_c.inc();
            samples_c.add(count as u64);
        }

        let mut slot = shared.slot.lock().unwrap();
        slot.results.push(acc);
        slot.done += 1;
        shared.finish.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap analytic task: sample value = log-normal(0.2) around 1.0.
    /// Fast enough to run big sample counts in debug tests.
    struct LogNormalTask;

    struct LnWorker;

    impl BlockWorker for LnWorker {
        fn run_block(&mut self, block: BlockSpec, out: &mut Vec<f64>) {
            let mut rng = crate::sample::BlockRng::new(block.seed, block.index);
            out.clear();
            out.extend((0..block.count).map(|_| rng.log_normal(0.2)));
        }
    }

    impl McTask for LogNormalTask {
        type Worker<'a> = LnWorker;
        fn make_worker(&self) -> LnWorker {
            LnWorker
        }
    }

    fn grid() -> QuantileGrid {
        QuantileGrid::around(1.0, 64.0, 512)
    }

    fn run_with(workers: usize, samples: u64) -> McReport {
        let reg = Registry::new();
        let engine = McEngine::new(Arc::new(LogNormalTask), workers, &reg);
        let cfg = McConfig::new(samples, 0xD00D, grid())
            .with_block_size(512)
            .with_deadline(1.5);
        engine.run(&cfg)
    }

    #[test]
    fn bit_identical_across_worker_counts() {
        let base = run_with(1, 20_000);
        for workers in [2, 4, 8] {
            let r = run_with(workers, 20_000);
            assert_eq!(r.summary, base.summary, "workers={workers}");
        }
    }

    #[test]
    fn statistics_are_sane() {
        let r = run_with(4, 50_000);
        let s = &r.summary;
        assert_eq!(s.samples, 50_000);
        assert_eq!(s.invalid, 0);
        // log-normal(σ=0.2): median 1, mean exp(σ²/2) ≈ 1.0202.
        assert!((s.mean - 1.0202).abs() < 0.01, "mean {}", s.mean);
        let (p50, p95, p997) = (s.p50.unwrap(), s.p95.unwrap(), s.p997.unwrap());
        assert!((p50 - 1.0).abs() < 0.02, "p50 {p50}");
        assert!(p95 > p50 && p997 > p95);
        // P(x ≤ 1.5) = Φ(ln1.5/0.2) = Φ(2.027) ≈ 0.9787.
        let y = s.yield_fraction.unwrap();
        assert!((y - 0.9787).abs() < 0.01, "yield {y}");
        assert!(r.samples_per_sec > 0.0);
    }

    #[test]
    fn engine_is_reusable_across_jobs() {
        let reg = Registry::new();
        let engine = McEngine::new(Arc::new(LogNormalTask), 3, &reg);
        let cfg = McConfig::new(5_000, 7, grid()).with_block_size(256);
        let a = engine.run(&cfg);
        let b = engine.run(&cfg);
        assert_eq!(a.summary, b.summary);
        let c = engine.run(&McConfig::new(5_000, 8, grid()).with_block_size(256));
        assert_ne!(c.summary.mean, a.summary.mean);
        assert_eq!(reg.counter("mc_blocks_total").get(), 60);
        assert_eq!(reg.counter("mc_samples_total").get(), 15_000);
    }

    #[test]
    fn short_final_block_is_exact() {
        let r = run_with(1, 1_025); // 2 full 512-blocks + 1-sample tail
        assert_eq!(r.summary.samples, 1_025);
        assert_eq!(r.summary.blocks, 3);
    }

    #[test]
    fn invalid_samples_are_counted_not_propagated() {
        struct NanTask;
        struct NanWorker;
        impl BlockWorker for NanWorker {
            fn run_block(&mut self, block: BlockSpec, out: &mut Vec<f64>) {
                out.clear();
                out.extend((0..block.count).map(|j| {
                    if j % 10 == 0 {
                        f64::NAN
                    } else {
                        1.0 + j as f64 * 1e-6
                    }
                }));
            }
        }
        impl McTask for NanTask {
            type Worker<'a> = NanWorker;
            fn make_worker(&self) -> NanWorker {
                NanWorker
            }
        }
        let reg = Registry::new();
        let engine = McEngine::new(Arc::new(NanTask), 2, &reg);
        let r = engine.run(&McConfig::new(1_000, 1, grid()).with_block_size(100));
        assert_eq!(r.summary.samples, 1_000);
        assert_eq!(r.summary.invalid, 100);
        assert_eq!(r.summary.valid, 900);
        assert!(r.summary.mean.is_finite());
    }
}
