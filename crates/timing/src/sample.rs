//! Counter-based, block-keyed random sampling for the streaming Monte
//! Carlo engine.
//!
//! The engine's determinism guarantee rests on this module: every sample
//! block draws from a [`BlockRng`] seeded purely by `(seed, block_index)`,
//! never by which worker thread happens to run the block. Results are
//! therefore bit-identical at any worker count, and any block can be
//! re-executed in isolation.
//!
//! The generator is splitmix64 — the same core the vendored `rand`
//! stand-in uses — with the block index folded into the initial state
//! through two full mixing rounds so adjacent blocks are decorrelated.
//! The normal/log-normal transforms are the Box–Muller cosine branch that
//! `examples/monte_carlo_timing.rs` used to hand-roll; they live here so
//! examples, the gate-chain sampler, and tests share one pinned
//! implementation (see the golden test at the bottom).

/// splitmix64's output mixing function.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic per-block random stream: `(seed, block)` fully
/// determines every draw.
#[derive(Debug, Clone)]
pub struct BlockRng {
    state: u64,
}

impl BlockRng {
    /// Stream for block `block` of the run keyed by `seed`.
    pub fn new(seed: u64, block: u64) -> Self {
        // Two mix rounds over seed and counter: blocks 0 and 1 of the same
        // seed share no low-entropy prefix, and the same block index under
        // different seeds is unrelated.
        let state = mix64(mix64(seed ^ GOLDEN) ^ block.wrapping_mul(GOLDEN).wrapping_add(1));
        BlockRng { state }
    }

    /// Next raw 64-bit word (splitmix64 step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)` (53-bit mantissa).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via the Box–Muller cosine branch.
    ///
    /// Two uniforms per draw; the sine partner is discarded so the number
    /// of raw words consumed per normal is a constant 2 — that constancy
    /// is part of the pinned sequence contract.
    #[inline]
    pub fn normal(&mut self) -> f64 {
        // 1 − u ∈ (0, 1] keeps the log argument away from zero.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal multiplier `exp(sigma · z)` with median 1 — the process
    /// variation model the examples use (a σ-sized geometric spread).
    #[inline]
    pub fn log_normal(&mut self, sigma: f64) -> f64 {
        (sigma * self.normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pinned output sequence. If this test fails, the determinism
    /// guarantee documented in docs/timing.md is broken: committed yield
    /// reports and the bit-identical-across-workers property both assume
    /// this exact stream.
    #[test]
    fn golden_sequence_is_pinned() {
        let mut r = BlockRng::new(0x5EED, 0);
        assert_eq!(r.next_u64(), 0x983f053f7ab9aea6);
        assert_eq!(r.next_u64(), 0x86f7d9b1206516a2);
        assert_eq!(r.next_u64(), 0xb1f6410d2cc33d7a);
        let mut r = BlockRng::new(0x5EED, 0);
        let u: Vec<f64> = (0..3).map(|_| r.next_f64()).collect();
        assert_eq!(u[0], 0.5947116165141099);
        assert_eq!(u[1], 0.5272193963468406);
        assert_eq!(u[2], 0.6951637894787951);
        let mut r = BlockRng::new(0x5EED, 0);
        assert_eq!(r.normal(), -1.3243837774034724);
        assert_eq!(r.log_normal(0.25), 0.7830085430924648);
    }

    #[test]
    fn blocks_are_independent_streams() {
        let a: Vec<u64> = {
            let mut r = BlockRng::new(7, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = BlockRng::new(7, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
        // Re-keying reproduces the block exactly.
        let a2: Vec<u64> = {
            let mut r = BlockRng::new(7, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
    }

    #[test]
    fn uniforms_cover_unit_interval() {
        let mut r = BlockRng::new(1, 42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = BlockRng::new(3, 9);
        let n = 50_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.normal();
            s1 += z;
            s2 += z * z;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn log_normal_median_is_one() {
        let mut r = BlockRng::new(11, 2);
        let mut v: Vec<f64> = (0..20_001).map(|_| r.log_normal(0.3)).collect();
        v.sort_by(f64::total_cmp);
        let median = v[v.len() / 2];
        assert!((median - 1.0).abs() < 0.03, "log-normal median {median}");
        assert!(v.iter().all(|&x| x > 0.0));
    }
}
