//! Online accumulators for streaming Monte Carlo: Welford mean/variance,
//! fixed-grid log-spaced quantiles, and yield-vs-deadline counters.
//!
//! The design goal is the determinism contract of docs/timing.md: a run's
//! statistics must be **bit-identical at any worker count and any
//! accumulator merge order**. Floating-point reduction is not associative,
//! so that property cannot come from merging running sums in arrival
//! order. Instead:
//!
//! - every quantity that merges by *integer addition* (histogram bins,
//!   yield counters, invalid counts) is merged directly — exact and
//!   commutative;
//! - the floating-point moments keep **per-block Welford partials**. Each
//!   block's partial is computed single-threaded over that block's samples
//!   in order (deterministic), merging accumulators only concatenates the
//!   partial lists, and [`YieldAccumulator::finish`] folds the partials in
//!   ascending block order with Chan's pairwise update. The fold order is
//!   canonical, so the result cannot depend on which worker ran which
//!   block or on the merge order.
//!
//! Memory is O(samples / block_size): ~48 bytes per block partial plus one
//! fixed histogram — never a per-sample vector. A 10⁷-sample run at the
//! default 4096-sample blocks carries ~2.4 k partials (~120 kB).

/// Running mean/variance in Welford form.
///
/// `push` is the classic single-pass update; `merge` is Chan et al.'s
/// pairwise combination. Both are deterministic for a fixed input order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Absorbs another accumulator (Chan's pairwise merge).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.mean += d * (other.n as f64 / n as f64);
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64 / n as f64);
        self.n = n;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`m2 / (n − 1)`; 0 when `n < 2`).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Configuration of the fixed log-spaced quantile grid.
///
/// Bin edges are `lo · (hi/lo)^(i/bins)`. Samples below `lo` land in the
/// first bin, above `hi` in the last (true min/max are tracked exactly, so
/// clamping is visible). Quantile estimates interpolate within the
/// crossing bin on the log scale, so the worst-case relative error of an
/// in-range quantile is one bin's ratio, `(hi/lo)^(1/bins) − 1` — about
/// 0.34 % for the default span 64 grid at 2048 bins (the documented
/// tolerance in docs/timing.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileGrid {
    lo: f64,
    hi: f64,
    bins: usize,
}

impl QuantileGrid {
    /// Default bin count.
    pub const DEFAULT_BINS: usize = 2048;

    /// Grid over `[lo, hi]` with `bins` log-spaced bins.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `bins >= 2`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi (got {lo}..{hi})");
        assert!(bins >= 2, "need at least 2 bins");
        QuantileGrid { lo, hi, bins }
    }

    /// Grid centered on a nominal value with a `span`-fold reach each way
    /// (covers `[nominal/span, nominal·span]`) — the form the gate-chain
    /// builder uses, with `span = 64` swallowing ±6σ of any practical
    /// process spread.
    pub fn around(nominal: f64, span: f64, bins: usize) -> Self {
        assert!(nominal > 0.0 && span > 1.0, "need nominal > 0, span > 1");
        Self::new(nominal / span, nominal * span, bins)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Lower edge.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// One bin's ratio minus one: the documented worst-case relative error
    /// of an in-range quantile estimate.
    pub fn relative_tolerance(&self) -> f64 {
        (self.hi / self.lo).powf(1.0 / self.bins as f64) - 1.0
    }

    /// Bin index for a value (clamped into range).
    #[inline]
    fn bin_of(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return self.bins - 1;
        }
        let t = (x / self.lo).ln() / (self.hi / self.lo).ln();
        ((t * self.bins as f64) as usize).min(self.bins - 1)
    }

    /// Value at normalized log position `t` ∈ [0, 1].
    fn value_at(&self, t: f64) -> f64 {
        self.lo * (self.hi / self.lo).powf(t)
    }
}

/// Per-block Welford partial, keyed by block index so the final fold has a
/// canonical order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPartial {
    /// Block index within the run.
    pub block: u64,
    /// Welford moments over the block's finite samples, in sample order.
    pub welford: Welford,
}

/// The streaming accumulator: one per worker during a run, merged into one
/// at the end (in any order), then [`YieldAccumulator::finish`]ed.
#[derive(Debug, Clone)]
pub struct YieldAccumulator {
    grid: QuantileGrid,
    deadline: Option<f64>,
    hist: Vec<u64>,
    blocks: Vec<BlockPartial>,
    yield_pass: u64,
    invalid: u64,
    min: f64,
    max: f64,
}

impl YieldAccumulator {
    /// Empty accumulator over the given grid; `deadline` (seconds) enables
    /// the yield counter.
    pub fn new(grid: QuantileGrid, deadline: Option<f64>) -> Self {
        YieldAccumulator {
            grid,
            deadline,
            hist: vec![0; grid.bins()],
            blocks: Vec::new(),
            yield_pass: 0,
            invalid: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The grid this accumulator bins into.
    pub fn grid(&self) -> &QuantileGrid {
        &self.grid
    }

    /// Absorbs one block of sample values. Non-finite or non-positive
    /// entries (the engine's "sample failed" sentinel) are counted as
    /// invalid and excluded from every statistic.
    pub fn push_block(&mut self, block: u64, values: &[f64]) {
        let mut w = Welford::new();
        for &x in values {
            if !x.is_finite() || x <= 0.0 {
                self.invalid += 1;
                continue;
            }
            w.push(x);
            self.hist[self.grid.bin_of(x)] += 1;
            if x < self.min {
                self.min = x;
            }
            if x > self.max {
                self.max = x;
            }
            if let Some(d) = self.deadline {
                if x <= d {
                    self.yield_pass += 1;
                }
            }
        }
        self.blocks.push(BlockPartial { block, welford: w });
    }

    /// Merges another accumulator (same grid and deadline) into this one.
    /// Exact and order-independent: histogram/yield/invalid counters add,
    /// block partial lists concatenate, min/max take extrema.
    ///
    /// # Panics
    ///
    /// Panics when the grids or deadlines differ.
    pub fn merge(&mut self, other: &YieldAccumulator) {
        assert_eq!(self.grid, other.grid, "accumulator grid mismatch");
        assert_eq!(self.deadline, other.deadline, "deadline mismatch");
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
        self.blocks.extend_from_slice(&other.blocks);
        self.yield_pass += other.yield_pass;
        self.invalid += other.invalid;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate from the histogram (`q` ∈ [0, 1]), interpolating
    /// on the log scale inside the crossing bin. `None` when no valid
    /// sample has been seen.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total: u64 = self.hist.iter().sum();
        if total == 0 {
            return None;
        }
        // Rank of the q-quantile among `total` sorted samples (nearest-rank
        // with interpolation inside the bin).
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64) + 1.0;
        let mut cum = 0u64;
        for (i, &c) in self.hist.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                let frac = (rank - cum as f64) / c as f64;
                let t = (i as f64 + frac.clamp(0.0, 1.0)) / self.grid.bins() as f64;
                // Clamp the estimate into the truly observed range so edge
                // bins (which also catch out-of-range samples) cannot
                // report a value outside [min, max].
                return Some(self.grid.value_at(t).clamp(self.min, self.max));
            }
            cum = next;
        }
        Some(self.max)
    }

    /// Folds the per-block partials in ascending block order and reports
    /// the summary. Deterministic for a given set of blocks regardless of
    /// insertion or merge order.
    pub fn finish(&self) -> Summary {
        let mut blocks = self.blocks.clone();
        blocks.sort_by_key(|b| b.block);
        debug_assert!(
            blocks.windows(2).all(|w| w[0].block != w[1].block),
            "duplicate block partial"
        );
        let mut w = Welford::new();
        for b in &blocks {
            w.merge(&b.welford);
        }
        let valid = w.count();
        Summary {
            samples: valid + self.invalid,
            valid,
            invalid: self.invalid,
            mean: w.mean(),
            variance: w.variance(),
            std_dev: w.std_dev(),
            min: if valid == 0 { f64::NAN } else { self.min },
            max: if valid == 0 { f64::NAN } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p997: self.quantile(0.997),
            yield_fraction: self.deadline.map(|_| {
                if valid == 0 {
                    0.0
                } else {
                    self.yield_pass as f64 / valid as f64
                }
            }),
            blocks: blocks.len() as u64,
        }
    }
}

/// Final statistics of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total samples seen (valid + invalid).
    pub samples: u64,
    /// Samples that produced a finite positive delay.
    pub valid: u64,
    /// Samples excluded (non-finite / non-positive delay).
    pub invalid: u64,
    /// Mean delay over valid samples.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Exact minimum valid delay.
    pub min: f64,
    /// Exact maximum valid delay.
    pub max: f64,
    /// Median estimate from the fixed grid.
    pub p50: Option<f64>,
    /// 95th percentile estimate.
    pub p95: Option<f64>,
    /// 99.7th percentile estimate.
    pub p997: Option<f64>,
    /// Fraction of valid samples meeting the deadline (when one was set).
    pub yield_fraction: Option<f64>,
    /// Number of blocks folded.
    pub blocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::BlockRng;

    #[test]
    fn welford_matches_two_pass() {
        let mut r = BlockRng::new(1, 0);
        let xs: Vec<f64> = (0..10_000).map(|_| 1e-9 * r.log_normal(0.4)).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() <= 1e-9 * mean.abs());
        assert!((w.variance() - var).abs() <= 1e-9 * var.abs());
    }

    #[test]
    fn welford_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(313);
        let (mut wa, mut wb) = (Welford::new(), Welford::new());
        a.iter().for_each(|&x| wa.push(x));
        b.iter().for_each(|&x| wb.push(x));
        wa.merge(&wb);
        assert_eq!(wa.count(), whole.count());
        assert!((wa.mean() - whole.mean()).abs() < 1e-12);
        assert!((wa.variance() - whole.variance()).abs() < 1e-12 * whole.variance());
    }

    #[test]
    fn grid_bins_and_tolerance() {
        let g = QuantileGrid::around(1e-9, 64.0, 2048);
        assert!(g.lo() < 1e-9 && g.hi() > 1e-9);
        assert!(g.relative_tolerance() < 0.005, "{}", g.relative_tolerance());
        assert_eq!(g.bin_of(0.0), 0);
        assert_eq!(g.bin_of(f64::MAX), g.bins() - 1);
        // Monotone binning.
        let mut last = 0;
        for i in 0..100 {
            let x = g.lo() * 1.1f64.powi(i);
            let b = g.bin_of(x.min(g.hi()));
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn quantiles_track_sorted_truth() {
        let grid = QuantileGrid::around(1e-9, 64.0, QuantileGrid::DEFAULT_BINS);
        let mut acc = YieldAccumulator::new(grid, None);
        let mut r = BlockRng::new(9, 0);
        let mut all = Vec::new();
        for b in 0..10u64 {
            let vals: Vec<f64> = (0..1000).map(|_| 1e-9 * r.log_normal(0.3)).collect();
            all.extend_from_slice(&vals);
            acc.push_block(b, &vals);
        }
        all.sort_by(f64::total_cmp);
        let tol = grid.relative_tolerance();
        for q in [0.1, 0.5, 0.9, 0.95, 0.997] {
            let truth = all[((all.len() - 1) as f64 * q) as usize];
            let est = acc.quantile(q).unwrap();
            assert!(
                (est - truth).abs() <= truth * (tol + 1e-3),
                "q={q}: est {est:e} vs truth {truth:e}"
            );
        }
    }

    #[test]
    fn invalid_samples_are_counted_not_binned() {
        let grid = QuantileGrid::new(1.0, 10.0, 16);
        let mut acc = YieldAccumulator::new(grid, Some(3.0));
        acc.push_block(0, &[2.0, f64::NAN, 4.0, -1.0, f64::INFINITY, 2.5]);
        let s = acc.finish();
        assert_eq!(s.valid, 3);
        assert_eq!(s.invalid, 3);
        assert_eq!(s.samples, 6);
        assert_eq!(s.yield_fraction, Some(2.0 / 3.0));
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn merge_any_order_is_bit_identical() {
        let grid = QuantileGrid::around(1.0, 16.0, 256);
        let mk = |blocks: &[u64]| {
            let mut acc = YieldAccumulator::new(grid, Some(1.2));
            for &b in blocks {
                let mut r = BlockRng::new(77, b);
                let vals: Vec<f64> = (0..257).map(|_| r.log_normal(0.5)).collect();
                acc.push_block(b, &vals);
            }
            acc
        };
        // Three workers with interleaved block ownership, merged in every
        // permutation: all summaries identical bit for bit.
        let parts = [mk(&[0, 3, 6]), mk(&[1, 4, 7]), mk(&[2, 5])];
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let summaries: Vec<Summary> = orders
            .iter()
            .map(|ord| {
                let mut acc = YieldAccumulator::new(grid, Some(1.2));
                for &i in ord {
                    acc.merge(&parts[i]);
                }
                acc.finish()
            })
            .collect();
        for s in &summaries[1..] {
            assert_eq!(s, &summaries[0]);
        }
        // And identical to a single accumulator that saw every block.
        let whole = mk(&[0, 1, 2, 3, 4, 5, 6, 7]).finish();
        assert_eq!(whole, summaries[0]);
    }

    #[test]
    fn empty_accumulator_finishes_cleanly() {
        let s = YieldAccumulator::new(QuantileGrid::new(1.0, 2.0, 8), None).finish();
        assert_eq!(s.samples, 0);
        assert_eq!(s.p50, None);
        assert!(s.min.is_nan());
        assert_eq!(s.yield_fraction, None);
    }
}
