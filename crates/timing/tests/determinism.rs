//! End-to-end determinism: a compiled gate chain driven by the streaming
//! engine produces bit-identical summaries at 1, 4, and 8 workers, and
//! the streamed statistics match a scalar per-sample reference.

use awesym_obs::Registry;
use awesym_timing::{BlockRng, ChainSpec, GateChain, McConfig, McEngine, McReport, QuantileGrid};
use std::sync::Arc;

fn small_chain() -> GateChain {
    let mut spec = ChainSpec::uniform(8);
    for s in &mut spec.stages {
        s.segments = 2; // keep debug-mode tape cost low; 8 stages as in the issue
    }
    GateChain::compile(&spec).unwrap()
}

fn run(chain: &GateChain, workers: usize, samples: u64) -> McReport {
    let grid = QuantileGrid::around(chain.nominal_delay(), 64.0, 512);
    let deadline = 1.2 * chain.nominal_delay();
    let reg = Registry::new();
    let engine = McEngine::new(Arc::new(chain.clone()), workers, &reg);
    engine.run(
        &McConfig::new(samples, 0xC0FFEE, grid)
            .with_block_size(256)
            .with_deadline(deadline),
    )
}

#[test]
fn summaries_bit_identical_across_worker_counts() {
    let chain = small_chain();
    let base = run(&chain, 1, 4_000);
    assert_eq!(base.summary.samples, 4_000);
    assert!(
        base.summary.invalid == 0,
        "invalid {}",
        base.summary.invalid
    );
    for workers in [4, 8] {
        let r = run(&chain, workers, 4_000);
        // Whole-summary equality: mean, variance, quantiles, yield, min,
        // max — every field, bit for bit.
        assert_eq!(r.summary, base.summary, "workers={workers}");
    }
}

#[test]
fn streamed_mean_matches_scalar_reference() {
    let chain = small_chain();
    let samples = 1_024u64;
    let block = 256usize;
    let r = run(&chain, 4, samples);

    // Re-derive the mean with the scalar (non-batch, non-pooled) path.
    let spec = chain.spec();
    let mut sum = 0.0;
    for b in 0..samples / block as u64 {
        let mut rng = BlockRng::new(0xC0FFEE, b);
        for _ in 0..block {
            let g = [
                rng.log_normal(spec.sigma_global_r),
                rng.log_normal(spec.sigma_global_c),
            ];
            let locals: Vec<[f64; 2]> = chain
                .stages()
                .iter()
                .map(|s| [rng.log_normal(s.sigma[0]), rng.log_normal(s.sigma[1])])
                .collect();
            sum += chain.sample_delay(g, &locals);
        }
    }
    let scalar_mean = sum / samples as f64;
    // Batch eval is bit-identical per point; the only difference is Welford
    // vs naive summation order.
    assert!(
        (r.summary.mean - scalar_mean).abs() <= 1e-12 * scalar_mean,
        "streamed {} vs scalar {}",
        r.summary.mean,
        scalar_mean
    );
}

#[test]
fn variation_widens_with_sigma() {
    let mut tight = ChainSpec::uniform(4);
    for s in &mut tight.stages {
        s.segments = 2;
        s.sigma_rdrv = 0.02;
        s.sigma_cload = 0.02;
    }
    tight.sigma_global_r = 0.01;
    tight.sigma_global_c = 0.01;
    let mut wide = tight.clone();
    for s in &mut wide.stages {
        s.sigma_rdrv = 0.2;
        s.sigma_cload = 0.2;
    }
    wide.sigma_global_r = 0.1;
    wide.sigma_global_c = 0.1;

    let rt = run(&GateChain::compile(&tight).unwrap(), 2, 4_000);
    let rw = run(&GateChain::compile(&wide).unwrap(), 2, 4_000);
    let cv_t = rt.summary.std_dev / rt.summary.mean;
    let cv_w = rw.summary.std_dev / rw.summary.mean;
    assert!(cv_w > 3.0 * cv_t, "cv tight {cv_t} vs wide {cv_w}");
    // Wider spread can only reduce yield against the same relative deadline.
    assert!(rw.summary.yield_fraction.unwrap() <= rt.summary.yield_fraction.unwrap());
}
