//! Property tests for the streaming accumulators (ISSUE satellite c):
//! Welford vs exact two-pass, grid quantiles vs sort-based truth, and
//! merge-order invariance under random block partitions.

use awesym_timing::{BlockRng, QuantileGrid, Welford, YieldAccumulator};
use proptest::prelude::*;

/// Draws `n` log-normal(σ) delays around `scale` from a seeded stream.
fn delays(seed: u64, n: usize, scale: f64, sigma: f64) -> Vec<f64> {
    let mut r = BlockRng::new(seed, 0);
    (0..n).map(|_| scale * r.log_normal(sigma)).collect()
}

proptest! {
    /// Welford single-pass mean/variance agree with the exact two-pass
    /// computation to 1e-9 relative, across scales spanning 18 decades.
    #[test]
    fn welford_matches_two_pass(
        seed in 0u64..1_000_000,
        n in 2usize..3000,
        log_scale in -9.0..9.0f64,
        sigma in 0.01..0.8f64,
    ) {
        let xs = delays(seed, n, 10f64.powf(log_scale), sigma);
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        prop_assert!(
            (w.mean() - mean).abs() <= 1e-9 * mean.abs(),
            "mean {} vs {}", w.mean(), mean
        );
        prop_assert!(
            (w.variance() - var).abs() <= 1e-9 * var.max(1e-300),
            "var {} vs {}", w.variance(), var
        );
    }

    /// Grid quantiles track the sort-based truth within the grid's
    /// documented relative tolerance (plus nearest-rank slack) on large
    /// random sample sets.
    #[test]
    fn quantiles_match_sorted_truth(
        seed in 0u64..1_000_000,
        sigma in 0.05..0.6f64,
    ) {
        let n = 100_000;
        let scale = 1e-9;
        let grid = QuantileGrid::around(scale, 64.0, QuantileGrid::DEFAULT_BINS);
        let mut acc = YieldAccumulator::new(grid, None);
        let mut all = Vec::with_capacity(n);
        let mut r = BlockRng::new(seed, 1);
        for b in 0..25u64 {
            let vals: Vec<f64> = (0..n / 25).map(|_| scale * r.log_normal(sigma)).collect();
            all.extend_from_slice(&vals);
            acc.push_block(b, &vals);
        }
        all.sort_by(f64::total_cmp);
        let tol = grid.relative_tolerance() + 2e-3;
        for q in [0.05, 0.5, 0.95, 0.997] {
            let truth = all[((all.len() - 1) as f64 * q) as usize];
            let est = acc.quantile(q).unwrap();
            prop_assert!(
                (est - truth).abs() <= truth * tol,
                "q={q}: est {est:e} truth {truth:e} tol {tol}"
            );
        }
    }

    /// Splitting one sample set into random per-worker block subsets and
    /// merging the workers in rotated order produces a summary that is
    /// bit-identical to the single-accumulator reference.
    #[test]
    fn merge_order_invariance(
        seed in 0u64..1_000_000,
        n_blocks in 2u64..40,
        workers in 2usize..6,
        rot in 0usize..6,
    ) {
        let grid = QuantileGrid::around(1.0, 16.0, 256);
        let block_vals = |b: u64| -> Vec<f64> {
            let mut r = BlockRng::new(seed, b);
            (0..97).map(|_| r.log_normal(0.4)).collect()
        };

        let mut whole = YieldAccumulator::new(grid, Some(1.3));
        for b in 0..n_blocks {
            whole.push_block(b, &block_vals(b));
        }

        // Deal blocks round-robin to workers, then merge in rotated order.
        let mut parts: Vec<YieldAccumulator> = (0..workers)
            .map(|_| YieldAccumulator::new(grid, Some(1.3)))
            .collect();
        for b in 0..n_blocks {
            parts[(b as usize) % workers].push_block(b, &block_vals(b));
        }
        let mut acc = YieldAccumulator::new(grid, Some(1.3));
        for i in 0..workers {
            acc.merge(&parts[(i + rot) % workers]);
        }
        prop_assert_eq!(acc.finish(), whole.finish());
    }
}
