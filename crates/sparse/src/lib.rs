//! Sparse-matrix substrate for AWEsymbolic.
//!
//! Circuit MNA matrices are large and very sparse (the paper's coupled-line
//! example has 1000 segments per line). This crate provides:
//!
//! - [`Triplets`]: a coordinate-format builder that sums duplicates — the
//!   natural target for MNA stamping;
//! - [`Csc`]: compressed sparse column storage with matrix-vector products;
//! - [`SparseLu`]: a left-looking (Gilbert–Peierls) LU factorization with
//!   threshold partial pivoting and a fill-reducing minimum-degree column
//!   ordering, generic over real and complex scalars.
//!
//! The factorization is reusable: AWE factors the conductance matrix `G`
//! once and computes every moment with one forward/backward substitution.
//!
//! # Example
//!
//! ```
//! use awesym_sparse::{SparseLu, Triplets};
//!
//! # fn main() -> Result<(), awesym_linalg::LinalgError> {
//! let mut t = Triplets::new(2);
//! t.push(0, 0, 2.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let lu = SparseLu::factor(&t.to_csc(), Default::default())?;
//! let x = lu.solve(&[1.0, 2.0]);
//! assert!((2.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod csc;
mod lu;
mod ordering;

pub use csc::{Csc, Triplets};
pub use lu::{LuOptions, SparseLu};
pub use ordering::{min_degree_order, Ordering};
