//! Left-looking (Gilbert–Peierls) sparse LU with threshold partial pivoting.
//!
//! The algorithm follows the classical formulation: for each column of the
//! (column-permuted) matrix, a depth-first search over the pattern of the
//! already-computed `L` determines which entries fill in, a sparse
//! triangular solve computes the column, and a pivot row is chosen among
//! the not-yet-pivotal rows with a diagonal preference controlled by a
//! threshold.

use crate::csc::{Csc, Triplets};
use crate::ordering::{min_degree_order, Ordering};
use awesym_linalg::{LinalgError, Scalar};

/// Options controlling [`SparseLu::factor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuOptions {
    /// Column ordering strategy.
    pub ordering: Ordering,
    /// Partial-pivoting threshold in `(0, 1]`: the diagonal entry is kept as
    /// pivot when its magnitude is at least `threshold` times the largest
    /// eligible magnitude in the column. `1.0` is classical partial pivoting.
    pub threshold: f64,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            ordering: Ordering::MinDegree,
            threshold: 1e-3,
        }
    }
}

/// A sparse LU factorization `P A Q = L U`.
///
/// Factor once, then call [`SparseLu::solve`] (and
/// [`SparseLu::solve_transposed`] for adjoint/sensitivity analysis) for any
/// number of right-hand sides.
#[derive(Debug, Clone)]
pub struct SparseLu<T> {
    n: usize,
    /// L in CSC, unit diagonal stored, rows in pivot order.
    l: Csc<T>,
    /// U in CSC, diagonal stored last per column, rows in pivot order.
    u: Csc<T>,
    /// `row_perm[k]` = original row that is pivot `k`.
    row_perm: Vec<usize>,
    /// `col_perm[k]` = original column eliminated at step `k`.
    col_perm: Vec<usize>,
}

impl<T: Scalar> SparseLu<T> {
    /// Factors a square sparse matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when a column has no usable pivot.
    pub fn factor(a: &Csc<T>, opts: LuOptions) -> Result<Self, LinalgError> {
        let n = a.dim();
        let col_perm = match opts.ordering {
            Ordering::Natural => (0..n).collect::<Vec<_>>(),
            Ordering::MinDegree => min_degree_order(a),
        };
        // pinv[orig_row] = pivot position, or usize::MAX when unpivoted.
        let mut pinv = vec![usize::MAX; n];
        let mut row_perm = vec![0usize; n];

        // L and U built column by column. L row indices are original rows
        // during the factorization; they are remapped through pinv at the end.
        let mut l_colptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        let mut u_colptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();

        // Workspaces.
        let mut x = vec![T::zero(); n];
        let mut mark = vec![usize::MAX; n]; // visitation stamp per original row
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (orig row, next child idx)
        let mut topo: Vec<usize> = Vec::new();

        for k in 0..n {
            let j = col_perm[k];
            // --- Symbolic: find the reach of A(:,j) through pivotal columns of L.
            topo.clear();
            for (r0, _) in a.col_iter(j) {
                if mark[r0] == k {
                    continue;
                }
                // DFS from r0, iterative with explicit child cursors.
                stack.push((r0, 0));
                mark[r0] = k;
                while !stack.is_empty() {
                    let top = stack.len() - 1;
                    let (r, child) = stack[top];
                    let piv = pinv[r];
                    if piv == usize::MAX {
                        // Non-pivotal row: leaf.
                        topo.push(r);
                        stack.pop();
                        continue;
                    }
                    // Children are the below-diagonal rows of L column `piv`.
                    let lo = l_colptr[piv];
                    let hi = l_colptr[piv + 1];
                    let mut c = child;
                    let mut pushed = false;
                    while lo + c < hi {
                        let rr = l_rows[lo + c];
                        c += 1;
                        if mark[rr] != k {
                            mark[rr] = k;
                            stack[top].1 = c;
                            stack.push((rr, 0));
                            pushed = true;
                            break;
                        }
                    }
                    if !pushed {
                        // All children visited: finish this node.
                        topo.push(r);
                        stack.pop();
                    }
                }
            }
            // topo now holds the reach in reverse topological order
            // (children appear before parents), so iterate in reverse for the
            // forward triangular solve.

            // --- Numeric: scatter A(:,j), then eliminate.
            for &r in topo.iter() {
                x[r] = T::zero();
            }
            for (r, v) in a.col_iter(j) {
                x[r] = v;
            }
            for idx in (0..topo.len()).rev() {
                let r = topo[idx];
                let piv = pinv[r];
                if piv == usize::MAX {
                    continue;
                }
                let xr = x[r];
                if xr.is_zero() {
                    continue;
                }
                // x -= L(:,piv) * x[r]  (unit diagonal implicit here; the
                // stored column contains the below-diagonal entries with
                // original row indices plus the diagonal 1 first).
                let lo = l_colptr[piv];
                let hi = l_colptr[piv + 1];
                for t in lo..hi {
                    let rr = l_rows[t];
                    let lv = l_vals[t];
                    x[rr] -= lv * xr;
                }
            }

            // --- Pivot selection among non-pivotal rows.
            let mut max_mag = 0.0_f64;
            let mut best_row = usize::MAX;
            let mut diag_row = usize::MAX;
            for &r in topo.iter() {
                if pinv[r] == usize::MAX {
                    let m = x[r].modulus();
                    if r == j {
                        diag_row = r;
                    }
                    if m > max_mag {
                        max_mag = m;
                        best_row = r;
                    }
                }
            }
            if best_row == usize::MAX || max_mag == 0.0 {
                return Err(LinalgError::Singular { step: k });
            }
            let pivot_row =
                if diag_row != usize::MAX && x[diag_row].modulus() >= opts.threshold * max_mag {
                    diag_row
                } else {
                    best_row
                };
            let pivot = x[pivot_row];
            pinv[pivot_row] = k;
            row_perm[k] = pivot_row;

            // --- Emit U column k (rows already pivotal), diagonal last.
            for &r in topo.iter().rev() {
                let piv = pinv[r];
                if piv != usize::MAX && r != pivot_row && piv < k && !x[r].is_zero() {
                    u_rows.push(piv);
                    u_vals.push(x[r]);
                }
            }
            u_rows.push(k);
            u_vals.push(pivot);
            u_colptr.push(u_rows.len());

            // --- Emit L column k: unit diagonal then below-diagonal entries
            // (original row indices for now).
            for &r in topo.iter() {
                if pinv[r] == usize::MAX && !x[r].is_zero() {
                    l_rows.push(r);
                    l_vals.push(x[r] / pivot);
                }
            }
            l_colptr.push(l_rows.len());
        }

        // Remap L's row indices into pivot order and sort columns.
        for r in l_rows.iter_mut() {
            *r = pinv[*r];
        }
        let l = csc_from_parts(n, &l_colptr, &l_rows, &l_vals);
        let u = csc_from_parts(n, &u_colptr, &u_rows, &u_vals);
        Ok(SparseLu {
            n,
            l,
            u,
            row_perm,
            col_perm,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of nonzeros in `L + U` (fill-in indicator).
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        // y = L \ (P b)
        let mut y: Vec<T> = (0..self.n).map(|k| b[self.row_perm[k]]).collect();
        for k in 0..self.n {
            let yk = y[k];
            if yk.is_zero() {
                continue;
            }
            for (r, v) in self.l.col_iter(k) {
                y[r] -= v * yk;
            }
        }
        // z = U \ y  (U diagonal stored last per column)
        for k in (0..self.n).rev() {
            let lo = self.u.col_ptr()[k];
            let hi = self.u.col_ptr()[k + 1];
            let diag = self.u.values()[hi - 1];
            let zk = y[k] / diag;
            y[k] = zk;
            if zk.is_zero() {
                continue;
            }
            for t in lo..hi - 1 {
                let r = self.u.row_idx()[t];
                y[r] -= self.u.values()[t] * zk;
            }
        }
        // x = Q z
        let mut x = vec![T::zero(); self.n];
        for k in 0..self.n {
            x[self.col_perm[k]] = y[k];
        }
        x
    }

    /// Solves `Aᵀ x = b` (the adjoint system used by sensitivity analysis).
    ///
    /// # Panics
    ///
    /// Panics when `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        // Aᵀ = Qᵀ⁻¹ Uᵀ Lᵀ P…: with P A Q = L U,  Aᵀ = Q Uᵀ Lᵀ P in
        // permutation-matrix notation; solve Uᵀ w = Qᵀ b, Lᵀ v = w, x = Pᵀ v.
        let mut w: Vec<T> = (0..self.n).map(|k| b[self.col_perm[k]]).collect();
        // Uᵀ is lower triangular: forward solve using columns of U as rows.
        for k in 0..self.n {
            let lo = self.u.col_ptr()[k];
            let hi = self.u.col_ptr()[k + 1];
            let mut acc = w[k];
            for t in lo..hi - 1 {
                let r = self.u.row_idx()[t];
                acc -= self.u.values()[t] * w[r];
            }
            w[k] = acc / self.u.values()[hi - 1];
        }
        // Lᵀ is upper triangular with unit diagonal: backward solve.
        for k in (0..self.n).rev() {
            let mut acc = w[k];
            for (r, v) in self.l.col_iter(k) {
                acc -= v * w[r];
            }
            w[k] = acc;
        }
        let mut x = vec![T::zero(); self.n];
        for k in 0..self.n {
            x[self.row_perm[k]] = w[k];
        }
        x
    }

    /// Determinant of the original matrix (product of pivots with the
    /// permutation parities folded in).
    pub fn det(&self) -> T {
        let mut d = T::one();
        for k in 0..self.n {
            let hi = self.u.col_ptr()[k + 1];
            d *= self.u.values()[hi - 1];
        }
        let sign = perm_sign(&self.row_perm) * perm_sign(&self.col_perm);
        d * T::from_f64(sign)
    }
}

fn perm_sign(p: &[usize]) -> f64 {
    let mut seen = vec![false; p.len()];
    let mut sign = 1.0;
    for start in 0..p.len() {
        if seen[start] {
            continue;
        }
        let mut len = 0;
        let mut i = start;
        while !seen[i] {
            seen[i] = true;
            i = p[i];
            len += 1;
        }
        if len % 2 == 0 {
            sign = -sign;
        }
    }
    sign
}

fn csc_from_parts<T: Scalar>(n: usize, colptr: &[usize], rows: &[usize], vals: &[T]) -> Csc<T> {
    let mut t = Triplets::new(n);
    for j in 0..n {
        for k in colptr[j]..colptr[j + 1] {
            t.push(rows[k], j, vals[k]);
        }
    }
    t.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_linalg::Complex64;

    fn ladder(n: usize) -> Csc<f64> {
        // Tridiagonal SPD conductance matrix of an RC ladder.
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.push(i, i, 2.0 + 0.1 * i as f64);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csc()
    }

    fn check_solution(a: &Csc<f64>, lu: &SparseLu<f64>, x_true: &[f64]) {
        let b = a.mul_vec(x_true);
        let x = lu.solve(&b);
        for (p, q) in x.iter().zip(x_true.iter()) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn solve_tridiagonal() {
        for n in [1, 2, 3, 10, 100] {
            let a = ladder(n);
            let lu = SparseLu::factor(&a, LuOptions::default()).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
            check_solution(&a, &lu, &x_true);
        }
    }

    #[test]
    fn natural_ordering_also_works() {
        let a = ladder(50);
        let lu = SparseLu::factor(
            &a,
            LuOptions {
                ordering: Ordering::Natural,
                threshold: 1.0,
            },
        )
        .unwrap();
        check_solution(&a, &lu, &vec![1.0; 50]);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] requires row exchange.
        let mut t = Triplets::new(2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, LuOptions::default()).unwrap();
        let x = lu.solve(&[3.0, 4.0]);
        assert!((x[0] - 4.0).abs() < 1e-14 && (x[1] - 3.0).abs() < 1e-14);
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn mna_like_indefinite_matrix() {
        // MNA with a voltage source has a zero diagonal block:
        // [ G  B ] [v]   [0]
        // [ Bᵀ 0 ] [i] = [E]
        let mut t = Triplets::new(3);
        t.push(0, 0, 1.0); // conductance to ground at node 0
        t.push(1, 1, 2.0);
        t.push(0, 2, 1.0); // source branch into node 0
        t.push(2, 0, 1.0);
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, LuOptions::default()).unwrap();
        let x_true = [5.0, 0.0, -5.0];
        check_solution(&a, &lu, &x_true);
    }

    #[test]
    fn transposed_solve() {
        let a = ladder(20);
        // Make it unsymmetric so the transpose matters.
        let mut t = Triplets::new(20);
        for j in 0..20 {
            for (r, v) in a.col_iter(j) {
                t.push(r, j, if r < j { 0.5 * v } else { v });
            }
        }
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, LuOptions::default()).unwrap();
        let x_true: Vec<f64> = (0..20).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let b = a.mul_vec_transposed(&x_true);
        let x = lu.solve_transposed(&b);
        for (p, q) in x.iter().zip(x_true.iter()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn determinant_matches_dense() {
        let a = ladder(6);
        let lu = SparseLu::factor(&a, LuOptions::default()).unwrap();
        let dense = awesym_linalg::Mat::from_fn(6, 6, |i, j| a.get(i, j));
        assert!((lu.det() - dense.det()).abs() < 1e-9 * dense.det().abs());
    }

    #[test]
    fn singular_matrix_detected() {
        let mut t = Triplets::new(2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        assert!(matches!(
            SparseLu::factor(&t.to_csc(), LuOptions::default()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_singular_detected() {
        // Empty column.
        let mut t = Triplets::new(2);
        t.push(0, 0, 1.0);
        assert!(SparseLu::factor(&t.to_csc(), LuOptions::default()).is_err());
    }

    #[test]
    fn complex_factorization() {
        let n = 8;
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.push(i, i, Complex64::new(2.0, 0.5 * i as f64));
            if i + 1 < n {
                t.push(i, i + 1, Complex64::new(-1.0, 0.1));
                t.push(i + 1, i, Complex64::new(-1.0, -0.1));
            }
        }
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, LuOptions::default()).unwrap();
        let x_true: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, -1.0)).collect();
        let b = a.mul_vec(&x_true);
        let x = lu.solve(&b);
        for (p, q) in x.iter().zip(x_true.iter()) {
            assert!((*p - *q).abs() < 1e-9);
        }
    }

    #[test]
    fn random_sparse_vs_dense() {
        // Pseudo-random sparse matrices cross-checked against dense LU.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..10 {
            let n = 5 + trial;
            let mut t = Triplets::new(n);
            for i in 0..n {
                t.push(i, i, 1.0 + rnd());
                for _ in 0..2 {
                    let j = (rnd() * n as f64) as usize % n;
                    t.push(i, j, rnd() - 0.5);
                }
            }
            let a = t.to_csc();
            let dense = awesym_linalg::Mat::from_fn(n, n, |i, j| a.get(i, j));
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            let b = a.mul_vec(&x_true);
            let xs = SparseLu::factor(&a, LuOptions::default())
                .unwrap()
                .solve(&b);
            let xd = dense.solve(&b).unwrap();
            for (p, q) in xs.iter().zip(xd.iter()) {
                assert!((p - q).abs() < 1e-8, "trial {trial}");
            }
        }
    }
}
