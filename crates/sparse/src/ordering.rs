//! Fill-reducing column orderings.

use crate::Csc;
use awesym_linalg::Scalar;

/// Column-ordering strategy for [`crate::SparseLu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Use the columns in their natural order.
    Natural,
    /// Greedy minimum-degree on the symmetrized pattern `A + Aᵀ`.
    #[default]
    MinDegree,
}

/// Computes a greedy minimum-degree permutation on the symmetrized pattern
/// of `a`. Returns `perm` where `perm[k]` is the original index eliminated
/// at step `k`.
///
/// This is the classical elimination-graph algorithm (neighbors of the
/// eliminated vertex become a clique); it is quadratic in the worst case but
/// circuit graphs are near-planar and this is more than adequate for the
/// workloads in this repository.
pub fn min_degree_order<T: Scalar>(a: &Csc<T>) -> Vec<usize> {
    let n = a.dim();
    // Symmetrized adjacency (no self loops), as sorted Vecs.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for (r, _) in a.col_iter(j) {
            if r != j {
                adj[r].push(j);
                adj[j].push(r);
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    let mut eliminated = vec![false; n];
    let mut deg: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut perm = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick the live vertex of minimum current degree (ties: smallest
        // index for determinism).
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && deg[v] < best_deg {
                best_deg = deg[v];
                best = v;
            }
        }
        let v = best;
        eliminated[v] = true;
        perm.push(v);
        // Form the clique among v's live neighbors, maintaining degrees
        // incrementally: each neighbor loses the edge to v and gains edges
        // to clique members it was not already adjacent to.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &nbrs {
            deg[u] -= 1;
        }
        for (i, &u) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                if let Err(pos) = adj[u].binary_search(&w) {
                    adj[u].insert(pos, w);
                    let pos = adj[w].binary_search(&u).unwrap_err();
                    adj[w].insert(pos, u);
                    deg[u] += 1;
                    deg[w] += 1;
                }
            }
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn path_graph(n: usize) -> Csc<f64> {
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csc()
    }

    #[test]
    fn perm_is_a_permutation() {
        let a = path_graph(10);
        let mut p = min_degree_order(&a);
        p.sort_unstable();
        assert_eq!(p, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn path_graph_starts_at_an_endpoint() {
        let a = path_graph(7);
        let p = min_degree_order(&a);
        // Endpoints have degree 1 and are eliminated first.
        assert!(p[0] == 0 || p[0] == 6);
    }

    #[test]
    fn star_graph_leaves_center_last() {
        // Center 0 connected to 1..=5.
        let mut t = Triplets::new(6);
        for i in 1..6 {
            t.push(0, i, 1.0);
            t.push(i, 0, 1.0);
            t.push(i, i, 1.0);
        }
        t.push(0, 0, 1.0);
        let p = min_degree_order(&t.to_csc());
        // The degree-5 center must not be eliminated before any leaf; by the
        // end only a tie with the final leaf remains, so it is one of the
        // last two.
        assert_ne!(p[0], 0);
        assert!(p[4] == 0 || p[5] == 0);
    }

    #[test]
    fn empty_matrix() {
        let a = Triplets::<f64>::new(0).to_csc();
        assert!(min_degree_order(&a).is_empty());
    }
}
