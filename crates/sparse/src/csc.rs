//! Coordinate-format builder and compressed sparse column storage.

use awesym_linalg::Scalar;

/// Coordinate-format ("triplet") sparse matrix builder over scalar `T`.
///
/// Duplicate `(row, col)` entries are summed when converting to [`Csc`],
/// which is exactly the semantics of MNA stamping.
#[derive(Debug, Clone, PartialEq)]
pub struct Triplets<T> {
    n: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> Triplets<T> {
    /// Creates an empty builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        Triplets {
            n,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Adds `v` at `(row, col)`; duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics when `row` or `col` is out of range.
    pub fn push(&mut self, row: usize, col: usize, v: T) {
        assert!(row < self.n && col < self.n, "triplet index out of range");
        if v.is_zero() {
            return;
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(v);
    }

    /// Converts to compressed sparse column form, summing duplicates.
    pub fn to_csc(&self) -> Csc<T> {
        let n = self.n;
        let mut count = vec![0usize; n + 1];
        for &c in &self.cols {
            count[c + 1] += 1;
        }
        for j in 0..n {
            count[j + 1] += count[j];
        }
        let col_ptr_raw = count.clone();
        let nnz = self.vals.len();
        let mut ri = vec![0usize; nnz];
        let mut vx = vec![T::zero(); nnz];
        let mut next = col_ptr_raw.clone();
        for k in 0..nnz {
            let c = self.cols[k];
            let dst = next[c];
            ri[dst] = self.rows[k];
            vx[dst] = self.vals[k];
            next[c] += 1;
        }
        // Sort each column by row and merge duplicates.
        let mut col_ptr = vec![0usize; n + 1];
        let mut out_ri = Vec::with_capacity(nnz);
        let mut out_vx = Vec::with_capacity(nnz);
        for j in 0..n {
            let lo = col_ptr_raw[j];
            let hi = col_ptr_raw[j + 1];
            let mut entries: Vec<(usize, T)> = (lo..hi).map(|k| (ri[k], vx[k])).collect();
            entries.sort_by_key(|e| e.0);
            let mut it = entries.into_iter();
            if let Some((mut r, mut v)) = it.next() {
                for (r2, v2) in it {
                    if r2 == r {
                        v += v2;
                    } else {
                        if !v.is_zero() {
                            out_ri.push(r);
                            out_vx.push(v);
                        }
                        r = r2;
                        v = v2;
                    }
                }
                if !v.is_zero() {
                    out_ri.push(r);
                    out_vx.push(v);
                }
            }
            col_ptr[j + 1] = out_ri.len();
        }
        Csc {
            n,
            col_ptr,
            row_idx: out_ri,
            vals: out_vx,
        }
    }
}

/// Compressed sparse column matrix over scalar `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<T> {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column pointer array (length `n + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array (length `nnz`).
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Stored values (length `nnz`).
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Iterates over the stored entries of column `j` as `(row, value)`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        (self.col_ptr[j]..self.col_ptr[j + 1]).map(move |k| (self.row_idx[k], self.vals[k]))
    }

    /// Value at `(row, col)`; zero when not stored.
    pub fn get(&self, row: usize, col: usize) -> T {
        for (r, v) in self.col_iter(col) {
            if r == row {
                return v;
            }
        }
        T::zero()
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.dim()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n, "dimension mismatch in mul_vec");
        let mut y = vec![T::zero(); self.n];
        for (j, &xj) in x.iter().enumerate() {
            if xj.is_zero() {
                continue;
            }
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                y[self.row_idx[k]] += self.vals[k] * xj;
            }
        }
        y
    }

    /// Transposed matrix-vector product `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.dim()`.
    pub fn mul_vec_transposed(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n, "dimension mismatch in mul_vec_transposed");
        let mut y = vec![T::zero(); self.n];
        for (j, yj) in y.iter_mut().enumerate() {
            let mut acc = T::zero();
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                acc += self.vals[k] * x[self.row_idx[k]];
            }
            *yj = acc;
        }
        y
    }

    /// Densifies into a row-major `Vec<Vec<T>>` (testing/debugging helper).
    // The column index addresses *inner* vectors at scattered rows, so an
    // iterator over `d` cannot replace it.
    #[allow(clippy::needless_range_loop)]
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        let mut d = vec![vec![T::zero(); self.n]; self.n];
        for j in 0..self.n {
            for (r, v) in self.col_iter(j) {
                d[r][j] = v;
            }
        }
        d
    }

    /// Maps values through `f`, preserving the pattern (used to lift a real
    /// pattern into a complex one, e.g. building `G + jωC`).
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Csc<U> {
        Csc {
            n: self.n,
            col_ptr: self.col_ptr.clone(),
            row_idx: self.row_idx.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Linear combination `a·self + b·other` (patterns may differ).
    ///
    /// # Panics
    ///
    /// Panics when the dimensions differ.
    pub fn linear_combination(&self, a: T, other: &Csc<T>, b: T) -> Csc<T> {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut t = Triplets::new(self.n);
        for j in 0..self.n {
            for (r, v) in self.col_iter(j) {
                t.push(r, j, a * v);
            }
            for (r, v) in other.col_iter(j) {
                t.push(r, j, b * v);
            }
        }
        t.to_csc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc<f64> {
        let mut t = Triplets::new(3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 2.0);
        t.push(2, 2, 3.0);
        t.push(0, 2, 4.0);
        t.push(2, 0, 5.0);
        t.to_csc()
    }

    #[test]
    fn duplicates_sum_and_zeros_drop() {
        let mut t = Triplets::new(2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 1, 5.0);
        t.push(1, 1, -5.0);
        t.push(1, 0, 0.0); // dropped eagerly
        let m = t.to_csc();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn columns_sorted_by_row() {
        let mut t = Triplets::new(3);
        t.push(2, 0, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 0, 3.0);
        let m = t.to_csc();
        let rows: Vec<usize> = m.col_iter(0).map(|(r, _)| r).collect();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.mul_vec(&x);
        assert_eq!(y, vec![1.0 + 12.0, 4.0, 5.0 + 9.0]);
        let yt = m.mul_vec_transposed(&x);
        // A^T x: col j of A dotted with x.
        assert_eq!(yt, vec![1.0 + 15.0, 4.0, 4.0 + 9.0]);
    }

    #[test]
    fn to_dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[0][2], 4.0);
        assert_eq!(d[2][0], 5.0);
        assert_eq!(d[1][0], 0.0);
    }

    #[test]
    fn linear_combination_merges_patterns() {
        let mut ta = Triplets::new(2);
        ta.push(0, 0, 1.0);
        let mut tb = Triplets::new(2);
        tb.push(1, 1, 1.0);
        tb.push(0, 0, 2.0);
        let c = ta.to_csc().linear_combination(2.0, &tb.to_csc(), 3.0);
        assert_eq!(c.get(0, 0), 2.0 + 6.0);
        assert_eq!(c.get(1, 1), 3.0);
    }

    #[test]
    fn map_to_complex() {
        use awesym_linalg::Complex64;
        let m = sample();
        let c = m.map(|v| Complex64::new(0.0, v));
        assert_eq!(c.get(0, 2), Complex64::new(0.0, 4.0));
        assert_eq!(c.nnz(), m.nnz());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut t = Triplets::new(2);
        t.push(2, 0, 1.0);
    }
}
