//! MNA system construction and frequency-domain solves.

use crate::MnaError;
use awesym_circuit::{Circuit, Element, ElementId, ElementKind, Node};
use awesym_linalg::Complex64;
use awesym_sparse::{Csc, LuOptions, SparseLu, Triplets};
use std::collections::HashMap;

/// One entry of an element's stamp derivative: `(row, col, ∂value/∂p)`.
pub type StampEntry = (usize, usize, f64);

/// An observation point for transfer-function analyses.
///
/// Node voltages give voltage gains, branch currents give transfer
/// admittances/current gains (the probed element must carry an explicit
/// MNA branch current: V source, inductor, VCVS, or CCVS), and
/// differential probes observe `v(p) − v(n)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    /// Voltage of a node (ground probes read 0).
    NodeVoltage(Node),
    /// `v(p) − v(n)`.
    DifferentialVoltage(Node, Node),
    /// Branch current of the named voltage-defined element.
    BranchCurrent(String),
}

/// The MNA formulation `(G + s·C)·x = b` of a [`Circuit`].
///
/// Unknown ordering: node voltages for nodes `1..num_nodes` first (node `k`
/// at index `k − 1`), then one branch current per voltage-defined element in
/// circuit order.
#[derive(Debug, Clone)]
pub struct Mna {
    num_nodes: usize,
    dim: usize,
    // `num_nodes` is retained for diagnostics; see [`Mna::num_nodes`].
    g: Csc<f64>,
    c: Csc<f64>,
    branch_of: HashMap<String, usize>,
    /// RHS pattern per independent source at unit amplitude.
    unit_rhs: HashMap<ElementId, Vec<(usize, f64)>>,
    /// Source values as stamped (for [`Mna::dc_solve`]).
    source_values: Vec<(ElementId, f64)>,
}

impl Mna {
    /// Builds the MNA system for a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::UnknownControlBranch`] when a CCCS/CCVS
    /// references a branch that carries no explicit current.
    pub fn build(circuit: &Circuit) -> Result<Mna, MnaError> {
        let num_nodes = circuit.num_nodes();
        // Assign branch currents.
        let mut branch_of = HashMap::new();
        let mut next = num_nodes - 1;
        for e in circuit.elements() {
            if e.needs_branch_current() {
                branch_of.insert(e.name.clone(), next);
                next += 1;
            }
        }
        let dim = next;
        let mut g = Triplets::new(dim);
        let mut c = Triplets::new(dim);
        let mut unit_rhs: HashMap<ElementId, Vec<(usize, f64)>> = HashMap::new();
        let mut source_values = Vec::new();

        for (idx, e) in circuit.elements().iter().enumerate() {
            let id = ElementId(idx);
            stamp_element(e, &branch_of, |m, r, col, v| match m {
                MatrixSel::G => g.push(r, col, v),
                MatrixSel::C => c.push(r, col, v),
            })?;
            match e.kind {
                ElementKind::Vsource => {
                    let l = branch_of[&e.name];
                    unit_rhs.insert(id, vec![(l, 1.0)]);
                    source_values.push((id, e.value));
                }
                ElementKind::Isource => {
                    let mut rhs = Vec::new();
                    if let Some(p) = node_index(e.p) {
                        rhs.push((p, -1.0));
                    }
                    if let Some(n) = node_index(e.n) {
                        rhs.push((n, 1.0));
                    }
                    unit_rhs.insert(id, rhs);
                    source_values.push((id, e.value));
                }
                _ => {}
            }
        }
        Ok(Mna {
            num_nodes,
            dim,
            g: g.to_csc(),
            c: c.to_csc(),
            branch_of,
            unit_rhs,
            source_values,
        })
    }

    /// System dimension (non-ground nodes + branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of circuit nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The conductance matrix `G`.
    pub fn g(&self) -> &Csc<f64> {
        &self.g
    }

    /// The susceptance (storage) matrix `C`.
    pub fn c(&self) -> &Csc<f64> {
        &self.c
    }

    /// Unknown index of a node voltage (`None` for ground).
    pub fn node_index(&self, n: Node) -> Option<usize> {
        node_index(n)
    }

    /// Unknown index of the branch current carried by a named element.
    pub fn branch_index(&self, name: &str) -> Option<usize> {
        self.branch_of.get(name).copied()
    }

    /// Unit-amplitude RHS vector for an independent source.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::BadReference`] when `source` is not an
    /// independent source of this circuit.
    pub fn unit_source_vector(&self, source: ElementId) -> Result<Vec<f64>, MnaError> {
        let pattern = self
            .unit_rhs
            .get(&source)
            .ok_or_else(|| MnaError::BadReference {
                what: format!("element #{} is not an independent source", source.0),
            })?;
        let mut b = vec![0.0; self.dim];
        for &(i, v) in pattern {
            b[i] = v;
        }
        Ok(b)
    }

    /// Selector vector `l` such that `lᵀ x` is the voltage of `node`.
    pub fn output_selector(&self, node: Node) -> Vec<f64> {
        let mut l = vec![0.0; self.dim];
        if let Some(i) = node_index(node) {
            l[i] = 1.0;
        }
        l
    }

    /// Selector vector for an arbitrary probe (node voltage, branch
    /// current, or a differential voltage).
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::BadReference`] when a branch probe names an
    /// element that carries no explicit MNA current.
    pub fn probe_selector(&self, probe: &Probe) -> Result<Vec<f64>, MnaError> {
        let mut l = vec![0.0; self.dim];
        match probe {
            Probe::NodeVoltage(n) => {
                if let Some(i) = node_index(*n) {
                    l[i] = 1.0;
                }
            }
            Probe::DifferentialVoltage(p, n) => {
                if let Some(i) = node_index(*p) {
                    l[i] += 1.0;
                }
                if let Some(i) = node_index(*n) {
                    l[i] -= 1.0;
                }
            }
            Probe::BranchCurrent(name) => {
                let i = self
                    .branch_of
                    .get(name)
                    .ok_or_else(|| MnaError::BadReference {
                        what: format!("element {name} has no branch current"),
                    })?;
                l[*i] = 1.0;
            }
        }
        Ok(l)
    }

    /// Voltage of `node` in a solution vector (0 for ground).
    pub fn voltage(&self, x: &[f64], node: Node) -> f64 {
        node_index(node).map_or(0.0, |i| x[i])
    }

    /// DC solve with every independent source at its stamped value.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Singular`] when `G` is singular.
    pub fn dc_solve(&self) -> Result<Vec<f64>, MnaError> {
        let lu = SparseLu::factor(&self.g, LuOptions::default())?;
        let mut b = vec![0.0; self.dim];
        for &(id, value) in &self.source_values {
            for &(i, u) in &self.unit_rhs[&id] {
                b[i] += u * value;
            }
        }
        Ok(lu.solve(&b))
    }

    /// Solves `(G + jω·C)·x = b` for a unit-amplitude input source.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Singular`] when the complex system is singular at
    /// this frequency and [`MnaError::BadReference`] for a non-source input.
    pub fn ac_solve(&self, input: ElementId, omega: f64) -> Result<Vec<Complex64>, MnaError> {
        let gz = self.g.map(Complex64::from_re);
        let cz = self.c.map(|v| Complex64::new(0.0, omega * v));
        let a = gz.linear_combination(Complex64::ONE, &cz, Complex64::ONE);
        let lu = SparseLu::factor(&a, LuOptions::default())?;
        let b_real = self.unit_source_vector(input)?;
        let b: Vec<Complex64> = b_real.iter().map(|&v| Complex64::from_re(v)).collect();
        Ok(lu.solve(&b))
    }

    /// Frequency response `H(jω) = v(output)/u` over a list of angular
    /// frequencies, for a unit-amplitude input source.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Mna::ac_solve`].
    pub fn ac_transfer(
        &self,
        input: ElementId,
        output: Node,
        omegas: &[f64],
    ) -> Result<Vec<Complex64>, MnaError> {
        let out = node_index(output);
        omegas
            .iter()
            .map(|&w| {
                let x = self.ac_solve(input, w)?;
                Ok(out.map_or(Complex64::ZERO, |i| x[i]))
            })
            .collect()
    }

    /// Derivative stamps `(∂G/∂p, ∂C/∂p)` of an element with respect to its
    /// stored value `p`. Used by AWE's adjoint sensitivity analysis.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::UnknownControlBranch`] for dangling control
    /// references (cannot normally happen after a successful
    /// [`Mna::build`]).
    pub fn stamp_derivative(
        &self,
        e: &Element,
    ) -> Result<(Vec<StampEntry>, Vec<StampEntry>), MnaError> {
        let mut dg = Vec::new();
        let mut dc = Vec::new();
        stamp_element_derivative(e, &self.branch_of, |m, r, col, v| match m {
            MatrixSel::G => dg.push((r, col, v)),
            MatrixSel::C => dc.push((r, col, v)),
        })?;
        Ok((dg, dc))
    }
}

fn node_index(n: Node) -> Option<usize> {
    if n.is_ground() {
        None
    } else {
        Some(n.0 - 1)
    }
}

#[derive(Clone, Copy)]
enum MatrixSel {
    G,
    C,
}

/// Stamps ±v at the four positions of a two-terminal admittance.
fn stamp_admittance(
    p: Node,
    n: Node,
    v: f64,
    m: MatrixSel,
    f: &mut impl FnMut(MatrixSel, usize, usize, f64),
) {
    let pi = node_index(p);
    let ni = node_index(n);
    if let Some(a) = pi {
        f(m, a, a, v);
    }
    if let Some(b) = ni {
        f(m, b, b, v);
    }
    if let (Some(a), Some(b)) = (pi, ni) {
        f(m, a, b, -v);
        f(m, b, a, -v);
    }
}

/// Core stamping shared by `G`/`C` assembly; `scale` multiplies the
/// value-dependent entries (1.0 for assembly, used with the chain rule for
/// derivatives).
fn stamp_with(
    e: &Element,
    branch_of: &HashMap<String, usize>,
    assemble: bool,
    f: &mut impl FnMut(MatrixSel, usize, usize, f64),
) -> Result<(), MnaError> {
    let ctrl = |name: &str| -> Result<usize, MnaError> {
        branch_of
            .get(name)
            .copied()
            .ok_or_else(|| MnaError::UnknownControlBranch {
                element: e.name.clone(),
                branch: name.to_string(),
            })
    };
    // For derivative stamping, `dv` is ∂(entry)/∂(e.value); for assembly the
    // entry itself is emitted.
    match e.kind {
        ElementKind::Resistor => {
            let v = if assemble {
                1.0 / e.value
            } else {
                -1.0 / (e.value * e.value)
            };
            stamp_admittance(e.p, e.n, v, MatrixSel::G, f);
        }
        ElementKind::Capacitor => {
            let v = if assemble { e.value } else { 1.0 };
            stamp_admittance(e.p, e.n, v, MatrixSel::C, f);
        }
        ElementKind::Inductor => {
            let l = branch_of[&e.name];
            if assemble {
                if let Some(p) = node_index(e.p) {
                    f(MatrixSel::G, l, p, 1.0);
                    f(MatrixSel::G, p, l, 1.0);
                }
                if let Some(n) = node_index(e.n) {
                    f(MatrixSel::G, l, n, -1.0);
                    f(MatrixSel::G, n, l, -1.0);
                }
                f(MatrixSel::C, l, l, -e.value);
            } else {
                f(MatrixSel::C, l, l, -1.0);
            }
        }
        ElementKind::Vsource => {
            if assemble {
                let l = branch_of[&e.name];
                if let Some(p) = node_index(e.p) {
                    f(MatrixSel::G, l, p, 1.0);
                    f(MatrixSel::G, p, l, 1.0);
                }
                if let Some(n) = node_index(e.n) {
                    f(MatrixSel::G, l, n, -1.0);
                    f(MatrixSel::G, n, l, -1.0);
                }
            }
            // The source amplitude lives on the RHS; no value-dependent
            // matrix entries.
        }
        ElementKind::Isource => {
            // RHS only.
        }
        ElementKind::Vccs => {
            let v = if assemble { e.value } else { 1.0 };
            let pi = node_index(e.p);
            let ni = node_index(e.n);
            let cpi = node_index(e.cp);
            let cni = node_index(e.cn);
            if let Some(p) = pi {
                if let Some(cp) = cpi {
                    f(MatrixSel::G, p, cp, v);
                }
                if let Some(cn) = cni {
                    f(MatrixSel::G, p, cn, -v);
                }
            }
            if let Some(n) = ni {
                if let Some(cp) = cpi {
                    f(MatrixSel::G, n, cp, -v);
                }
                if let Some(cn) = cni {
                    f(MatrixSel::G, n, cn, v);
                }
            }
        }
        ElementKind::Vcvs => {
            let l = branch_of[&e.name];
            if assemble {
                if let Some(p) = node_index(e.p) {
                    f(MatrixSel::G, l, p, 1.0);
                    f(MatrixSel::G, p, l, 1.0);
                }
                if let Some(n) = node_index(e.n) {
                    f(MatrixSel::G, l, n, -1.0);
                    f(MatrixSel::G, n, l, -1.0);
                }
            }
            let v = if assemble { e.value } else { 1.0 };
            if let Some(cp) = node_index(e.cp) {
                f(MatrixSel::G, l, cp, -v);
            }
            if let Some(cn) = node_index(e.cn) {
                f(MatrixSel::G, l, cn, v);
            }
        }
        ElementKind::Cccs => {
            let lc = ctrl(&e.ctrl_branch)?;
            let v = if assemble { e.value } else { 1.0 };
            if let Some(p) = node_index(e.p) {
                f(MatrixSel::G, p, lc, v);
            }
            if let Some(n) = node_index(e.n) {
                f(MatrixSel::G, n, lc, -v);
            }
        }
        ElementKind::Ccvs => {
            let l = branch_of[&e.name];
            let lc = ctrl(&e.ctrl_branch)?;
            if assemble {
                if let Some(p) = node_index(e.p) {
                    f(MatrixSel::G, l, p, 1.0);
                    f(MatrixSel::G, p, l, 1.0);
                }
                if let Some(n) = node_index(e.n) {
                    f(MatrixSel::G, l, n, -1.0);
                    f(MatrixSel::G, n, l, -1.0);
                }
            }
            let v = if assemble { e.value } else { 1.0 };
            f(MatrixSel::G, l, lc, -v);
        }
    }
    Ok(())
}

fn stamp_element(
    e: &Element,
    branch_of: &HashMap<String, usize>,
    mut f: impl FnMut(MatrixSel, usize, usize, f64),
) -> Result<(), MnaError> {
    stamp_with(e, branch_of, true, &mut f)
}

fn stamp_element_derivative(
    e: &Element,
    branch_of: &HashMap<String, usize>,
    mut f: impl FnMut(MatrixSel, usize, usize, f64),
) -> Result<(), MnaError> {
    stamp_with(e, branch_of, false, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::Element;

    fn divider() -> (Circuit, Node, Node) {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 10.0));
        c.add(Element::resistor("R1", n1, n2, 1e3));
        c.add(Element::resistor("R2", n2, Circuit::GROUND, 1e3));
        (c, n1, n2)
    }

    #[test]
    fn dc_voltage_divider() {
        let (c, n1, n2) = divider();
        let mna = Mna::build(&c).unwrap();
        let x = mna.dc_solve().unwrap();
        assert!((mna.voltage(&x, n1) - 10.0).abs() < 1e-9);
        assert!((mna.voltage(&x, n2) - 5.0).abs() < 1e-9);
        // Branch current of V1: 10 V across 2 kΩ → 5 mA, flowing out of +.
        let i = x[mna.branch_index("V1").unwrap()];
        assert!((i + 5e-3).abs() < 1e-9);
    }

    #[test]
    fn dc_with_current_source() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        c.add(Element::isource("I1", Circuit::GROUND, n1, 1e-3));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1e3));
        let mna = Mna::build(&c).unwrap();
        let x = mna.dc_solve().unwrap();
        assert!((mna.voltage(&x, n1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vcvs_amplifier() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 2.0));
        c.add(Element::vcvs(
            "E1",
            n2,
            Circuit::GROUND,
            n1,
            Circuit::GROUND,
            5.0,
        ));
        c.add(Element::resistor("RL", n2, Circuit::GROUND, 1e3));
        let mna = Mna::build(&c).unwrap();
        let x = mna.dc_solve().unwrap();
        assert!((mna.voltage(&x, n2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cccs_mirror() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0)); // i = 1 A through V1
        c.add(Element::cccs("F1", Circuit::GROUND, n2, "V1", 2.0));
        c.add(Element::resistor("R2", n2, Circuit::GROUND, 1.0));
        let mna = Mna::build(&c).unwrap();
        let x = mna.dc_solve().unwrap();
        // i(V1) = -1 A (current out of + terminal through the source),
        // F pushes 2·i(V1) from ground to n2: v(n2) = -(-2)·1 … sign check:
        let v2 = mna.voltage(&x, n2);
        assert!((v2.abs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ccvs_transresistance() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        c.add(Element::ccvs("H1", n2, Circuit::GROUND, "V1", 3.0));
        c.add(Element::resistor("R2", n2, Circuit::GROUND, 1.0));
        let mna = Mna::build(&c).unwrap();
        let x = mna.dc_solve().unwrap();
        assert!((mna.voltage(&x, n2).abs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_control_branch_rejected() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        c.add(Element::cccs("F1", n1, Circuit::GROUND, "Vmissing", 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        assert!(matches!(
            Mna::build(&c),
            Err(MnaError::UnknownControlBranch { .. })
        ));
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        c.add(Element::isource("I1", Circuit::GROUND, n1, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        // n2 has only a capacitor: G is singular.
        c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1.0));
        let mna = Mna::build(&c).unwrap();
        assert!(matches!(mna.dc_solve(), Err(MnaError::Singular(_))));
    }

    #[test]
    fn ac_rc_lowpass() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        let vid = c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, n2, 1e3));
        c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1e-6));
        let mna = Mna::build(&c).unwrap();
        let wc = 1.0 / (1e3 * 1e-6); // corner: 1000 rad/s
        let h = mna.ac_transfer(vid, n2, &[0.0, wc, 100.0 * wc]).unwrap();
        assert!((h[0].abs() - 1.0).abs() < 1e-9);
        assert!((h[1].abs() - 1.0 / 2.0_f64.sqrt()).abs() < 1e-9);
        assert!(h[2].abs() < 0.011);
    }

    #[test]
    fn ac_rlc_resonance() {
        // Series RLC driven by V, output across C: |H| peaks near w0.
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        let n3 = c.node("3");
        let vid = c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, n2, 10.0));
        c.add(Element::inductor("L1", n2, n3, 1e-3));
        c.add(Element::capacitor("C1", n3, Circuit::GROUND, 1e-6));
        let mna = Mna::build(&c).unwrap();
        let w0 = 1.0 / (1e-3_f64 * 1e-6).sqrt();
        let h = mna
            .ac_transfer(vid, n3, &[w0 / 10.0, w0, w0 * 10.0])
            .unwrap();
        assert!(h[1].abs() > h[0].abs());
        assert!(h[1].abs() > h[2].abs());
        // Q = w0 L / R = 3.16; |H(jw0)| = Q.
        assert!((h[1].abs() - 3.1623).abs() < 1e-2);
    }

    #[test]
    fn stamp_derivative_resistor() {
        let (c, _, _) = divider();
        let mna = Mna::build(&c).unwrap();
        let r1 = c.element(c.find("R1").unwrap());
        let (dg, dc) = mna.stamp_derivative(r1).unwrap();
        assert!(dc.is_empty());
        // d(1/R)/dR = -1/R² = -1e-6 at four positions.
        assert_eq!(dg.len(), 4);
        for &(_, _, v) in &dg {
            assert!((v.abs() - 1e-6).abs() < 1e-18);
        }
    }

    #[test]
    fn stamp_derivative_capacitor_and_inductor() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        c.add(Element::isource("I1", Circuit::GROUND, n1, 1.0));
        c.add(Element::resistor("R1", n1, Circuit::GROUND, 1.0));
        c.add(Element::capacitor("C1", n1, Circuit::GROUND, 2e-12));
        c.add(Element::inductor("L1", n1, Circuit::GROUND, 1e-9));
        let mna = Mna::build(&c).unwrap();
        let (dg, dcm) = mna
            .stamp_derivative(c.element(c.find("C1").unwrap()))
            .unwrap();
        assert!(dg.is_empty());
        assert_eq!(dcm, vec![(0, 0, 1.0)]);
        let (dg, dcm) = mna
            .stamp_derivative(c.element(c.find("L1").unwrap()))
            .unwrap();
        assert!(dg.is_empty());
        let l = mna.branch_index("L1").unwrap();
        assert_eq!(dcm, vec![(l, l, -1.0)]);
    }

    #[test]
    fn unit_source_vector_shapes() {
        let (c, _, _) = divider();
        let mna = Mna::build(&c).unwrap();
        let v1 = c.find("V1").unwrap();
        let b = mna.unit_source_vector(v1).unwrap();
        assert_eq!(b.iter().filter(|&&v| v != 0.0).count(), 1);
        assert!(mna.unit_source_vector(c.find("R1").unwrap()).is_err());
    }
}
