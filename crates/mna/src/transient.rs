//! Fixed-step transient simulation — the "traditional circuit simulator"
//! baseline the paper compares AWE against.
//!
//! For linear circuits with a fixed step `h` the companion system
//! `(G + α·C)` is factored once and every time step is a single
//! forward/backward substitution:
//!
//! - backward Euler: `(G + C/h)·x_{k+1} = b(t_{k+1}) + (C/h)·x_k`
//! - trapezoidal:    `(G + 2C/h)·x_{k+1} = b(t_{k+1}) + b(t_k)
//!                     + (2C/h)·x_k − (G)·x_k − …` (standard companion form)

use crate::{Mna, MnaError};
use awesym_circuit::{ElementId, Node};
use awesym_sparse::{LuOptions, SparseLu};

/// Implicit integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Backward Euler (L-stable, first order).
    BackwardEuler,
    /// Trapezoidal rule (A-stable, second order) — SPICE's default.
    #[default]
    Trapezoidal,
}

/// Input waveform applied to the designated source (all other independent
/// sources are held at zero, matching AWE's single-input analysis).
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// `u(t) = amplitude` for `t ≥ 0`.
    Step {
        /// Step height.
        amplitude: f64,
    },
    /// Linear ramp reaching `amplitude` at `rise_time`, constant after.
    Ramp {
        /// Final value.
        amplitude: f64,
        /// Time to reach the final value.
        rise_time: f64,
    },
    /// Piecewise-linear waveform given as `(time, value)` breakpoints
    /// sorted by time; constant extrapolation outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Value of the waveform at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        match self {
            Waveform::Step { amplitude } => {
                if t >= 0.0 {
                    *amplitude
                } else {
                    0.0
                }
            }
            Waveform::Ramp {
                amplitude,
                rise_time,
            } => {
                if t <= 0.0 {
                    0.0
                } else if t >= *rise_time {
                    *amplitude
                } else {
                    amplitude * t / rise_time
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t <= t1 {
                        let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
                        return v0 + f * (v1 - v0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

/// Options for [`transient`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Simulation end time (seconds).
    pub t_stop: f64,
    /// Fixed time step (seconds).
    pub dt: f64,
    /// Integration method.
    pub method: IntegrationMethod,
}

/// Result of [`transient`]: time points and one voltage trace per probe.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Time points, starting at 0.
    pub times: Vec<f64>,
    /// `traces[p][k]` is the voltage of probe `p` at `times[k]`.
    pub traces: Vec<Vec<f64>>,
}

/// Runs a fixed-step linear transient analysis from a zero initial state.
///
/// # Errors
///
/// Returns [`MnaError::Singular`] when the companion matrix cannot be
/// factored and [`MnaError::BadReference`] for a non-source `input`.
///
/// # Panics
///
/// Panics when `dt <= 0` or `t_stop < dt`.
pub fn transient(
    mna: &Mna,
    input: ElementId,
    waveform: &Waveform,
    opts: &TransientOptions,
    probes: &[Node],
) -> Result<TransientResult, MnaError> {
    assert!(opts.dt > 0.0, "dt must be positive");
    assert!(
        opts.t_stop >= opts.dt,
        "t_stop must cover at least one step"
    );
    let n = mna.dim();
    let bu = mna.unit_source_vector(input)?;
    let steps = (opts.t_stop / opts.dt).round() as usize;
    let h = opts.dt;

    let (alpha, trap) = match opts.method {
        IntegrationMethod::BackwardEuler => (1.0 / h, false),
        IntegrationMethod::Trapezoidal => (2.0 / h, true),
    };
    // A = G + alpha C, factored once.
    let a = mna.g().linear_combination(1.0, mna.c(), alpha);
    let lu = SparseLu::factor(&a, LuOptions::default())?;

    let mut x = vec![0.0; n];
    let mut times = Vec::with_capacity(steps + 1);
    let mut traces = vec![Vec::with_capacity(steps + 1); probes.len()];
    let record = |x: &[f64], times: &mut Vec<f64>, traces: &mut Vec<Vec<f64>>, t: f64| {
        times.push(t);
        for (p, node) in probes.iter().enumerate() {
            traces[p].push(mna.voltage(x, *node));
        }
    };
    // t = 0 initial condition: zero state (waveform assumed 0 for t < 0).
    record(&x, &mut times, &mut traces, 0.0);

    let mut u_prev = waveform.at(0.0);
    for k in 1..=steps {
        let t = k as f64 * h;
        let u = waveform.at(t);
        // rhs = b·u_{k+1} + alpha·C·x_k            (BE)
        //     = b·(u_{k+1}+u_k) + alpha·C·x_k − G·x_k  (TRAP)
        let cx = mna.c().mul_vec(&x);
        let mut rhs: Vec<f64> = cx.iter().map(|&v| alpha * v).collect();
        if trap {
            let gx = mna.g().mul_vec(&x);
            for i in 0..n {
                rhs[i] -= gx[i];
                rhs[i] += bu[i] * (u + u_prev);
            }
        } else {
            for i in 0..n {
                rhs[i] += bu[i] * u;
            }
        }
        x = lu.solve(&rhs);
        record(&x, &mut times, &mut traces, t);
        u_prev = u;
    }
    Ok(TransientResult { times, traces })
}

#[cfg(test)]
mod tests {
    use super::*;
    use awesym_circuit::{Circuit, Element};

    fn rc_circuit() -> (Circuit, ElementId, Node) {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        let v = c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, n2, 1e3));
        c.add(Element::capacitor("C1", n2, Circuit::GROUND, 1e-6));
        (c, v, n2)
    }

    #[test]
    fn rc_step_matches_analytic() {
        let (c, v, out) = rc_circuit();
        let mna = Mna::build(&c).unwrap();
        let tau = 1e-3;
        let opts = TransientOptions {
            t_stop: 5.0 * tau,
            dt: tau / 200.0,
            method: IntegrationMethod::Trapezoidal,
        };
        let res = transient(&mna, v, &Waveform::Step { amplitude: 1.0 }, &opts, &[out]).unwrap();
        for (t, v) in res.times.iter().zip(res.traces[0].iter()) {
            let truth = 1.0 - (-t / tau).exp();
            assert!((v - truth).abs() < 2e-4, "t={t}: {v} vs {truth}");
        }
    }

    #[test]
    fn backward_euler_converges_first_order() {
        let (c, v, out) = rc_circuit();
        let mna = Mna::build(&c).unwrap();
        let tau = 1e-3;
        let step = Waveform::Step { amplitude: 1.0 };
        let mut errs = Vec::new();
        for div in [50.0, 100.0] {
            let opts = TransientOptions {
                t_stop: tau,
                dt: tau / div,
                method: IntegrationMethod::BackwardEuler,
            };
            let res = transient(&mna, v, &step, &opts, &[out]).unwrap();
            let vt = *res.traces[0].last().unwrap();
            let truth = 1.0 - (-1.0_f64).exp();
            errs.push((vt - truth).abs());
        }
        // Halving dt should roughly halve the error.
        assert!(errs[1] < errs[0] * 0.7);
    }

    #[test]
    fn trapezoidal_beats_backward_euler() {
        let (c, v, out) = rc_circuit();
        let mna = Mna::build(&c).unwrap();
        let tau = 1e-3;
        let step = Waveform::Step { amplitude: 1.0 };
        let run = |method| {
            let opts = TransientOptions {
                t_stop: tau,
                dt: tau / 100.0,
                method,
            };
            let res = transient(&mna, v, &step, &opts, &[out]).unwrap();
            let truth = 1.0 - (-1.0_f64).exp();
            (res.traces[0].last().unwrap() - truth).abs()
        };
        assert!(run(IntegrationMethod::Trapezoidal) < run(IntegrationMethod::BackwardEuler));
    }

    #[test]
    fn ramp_and_pwl_waveforms() {
        let r = Waveform::Ramp {
            amplitude: 2.0,
            rise_time: 1.0,
        };
        assert_eq!(r.at(-1.0), 0.0);
        assert_eq!(r.at(0.5), 1.0);
        assert_eq!(r.at(3.0), 2.0);
        let p = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        assert_eq!(p.at(-1.0), 0.0);
        assert_eq!(p.at(0.5), 0.5);
        assert_eq!(p.at(1.5), 0.75);
        assert_eq!(p.at(5.0), 0.5);
        assert_eq!(Waveform::Pwl(vec![]).at(1.0), 0.0);
    }

    #[test]
    fn rlc_underdamped_oscillates() {
        let mut c = Circuit::new();
        let n1 = c.node("1");
        let n2 = c.node("2");
        let n3 = c.node("3");
        let v = c.add(Element::vsource("V1", n1, Circuit::GROUND, 1.0));
        c.add(Element::resistor("R1", n1, n2, 1.0));
        c.add(Element::inductor("L1", n2, n3, 1e-3));
        c.add(Element::capacitor("C1", n3, Circuit::GROUND, 1e-6));
        let mna = Mna::build(&c).unwrap();
        let w0 = 1.0 / (1e-3_f64 * 1e-6).sqrt();
        let period = 2.0 * std::f64::consts::PI / w0;
        let opts = TransientOptions {
            t_stop: 5.0 * period,
            dt: period / 400.0,
            method: IntegrationMethod::Trapezoidal,
        };
        let res = transient(&mna, v, &Waveform::Step { amplitude: 1.0 }, &opts, &[n3]).unwrap();
        let peak = res.traces[0].iter().cloned().fold(f64::MIN, f64::max);
        // Q ≈ 31.6 → strong overshoot approaching 2.0.
        assert!(peak > 1.8, "peak {peak}");
        // And it settles toward 1.0 eventually (energy dissipates).
        let last = *res.traces[0].last().unwrap();
        assert!((last - 1.0).abs() < 0.95);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn bad_dt_panics() {
        let (c, v, out) = rc_circuit();
        let mna = Mna::build(&c).unwrap();
        let opts = TransientOptions {
            t_stop: 1.0,
            dt: 0.0,
            method: IntegrationMethod::Trapezoidal,
        };
        let _ = transient(&mna, v, &Waveform::Step { amplitude: 1.0 }, &opts, &[out]);
    }
}
