//! Error type for MNA formulation and analysis.

use awesym_linalg::LinalgError;
use std::fmt;

/// Errors produced while building or solving an MNA system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MnaError {
    /// A current-controlled source references a branch that does not exist
    /// or does not carry an explicit MNA current.
    UnknownControlBranch {
        /// Name of the referencing element.
        element: String,
        /// Name of the missing control branch.
        branch: String,
    },
    /// The system matrix is singular — typically a node without a DC path
    /// to ground or a loop of voltage sources.
    Singular(LinalgError),
    /// The referenced element id/node does not belong to this circuit.
    BadReference {
        /// Description of the bad reference.
        what: String,
    },
}

impl fmt::Display for MnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnaError::UnknownControlBranch { element, branch } => {
                write!(
                    f,
                    "element {element} references unknown control branch {branch}"
                )
            }
            MnaError::Singular(e) => write!(f, "mna system is singular: {e}"),
            MnaError::BadReference { what } => write!(f, "bad reference: {what}"),
        }
    }
}

impl std::error::Error for MnaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MnaError::Singular(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MnaError {
    fn from(e: LinalgError) -> Self {
        MnaError::Singular(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = MnaError::UnknownControlBranch {
            element: "F1".into(),
            branch: "Vx".into(),
        };
        assert!(e.to_string().contains("Vx"));
        let s = MnaError::Singular(LinalgError::Singular { step: 2 });
        assert!(s.source().is_some());
        assert!(s.to_string().contains("singular"));
    }
}
