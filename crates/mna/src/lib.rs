//! Modified nodal analysis (MNA) for AWEsymbolic.
//!
//! Following Ho, Ruehli and Brennan, a linear circuit is formulated as
//!
//! ```text
//! (G + s·C) · x(s) = b·u(s)
//! ```
//!
//! where `x` stacks the non-ground node voltages and one branch current per
//! voltage-defined element (independent voltage sources, inductors, VCVS,
//! CCVS). The paper's moment recursion, the AC analysis, and the transient
//! baseline all operate on this single formulation:
//!
//! - [`Mna::dc_solve`] — operating point / resistive solve;
//! - [`Mna::ac_transfer`] — frequency response by direct complex solves;
//! - [`transient`] — backward-Euler / trapezoidal time stepping, the
//!   "traditional circuit simulator" the paper benchmarks AWE against.
//!
//! # Example
//!
//! ```
//! use awesym_circuit::{Circuit, Element};
//! use awesym_mna::Mna;
//!
//! # fn main() -> Result<(), awesym_mna::MnaError> {
//! let mut c = Circuit::new();
//! let n1 = c.node("1");
//! let n2 = c.node("2");
//! c.add(Element::vsource("V1", n1, Circuit::GROUND, 10.0));
//! c.add(Element::resistor("R1", n1, n2, 1e3));
//! c.add(Element::resistor("R2", n2, Circuit::GROUND, 1e3));
//! let mna = Mna::build(&c)?;
//! let x = mna.dc_solve()?;
//! assert!((mna.voltage(&x, n2) - 5.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod builder;
mod error;
mod transient;

pub use builder::{Mna, Probe, StampEntry};
pub use error::MnaError;
pub use transient::{transient, IntegrationMethod, TransientOptions, TransientResult, Waveform};
