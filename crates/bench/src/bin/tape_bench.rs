//! Tape-optimizer benchmark: op counts before/after the pass pipeline,
//! single-point latency, and SoA batch throughput on the bundled example
//! netlists (fig. 1 RC, §3.1 op-amp, §3.2 coupled lines).
//!
//! Emits `results/BENCH_tape.json` and exits non-zero when any gate
//! fails: ≥ 20 % op-count reduction, optimized/unoptimized agreement to
//! 1e-12 relative, and batch throughput ≥ 1.3× the pre-optimizer
//! single-point path.
//!
//! ```sh
//! cargo run --release -p awesym-bench --bin tape_bench [-- --smoke]
//! ```

use awesym_bench::time_median;
use awesymbolic::prelude::*;
use awesymbolic::{ModelOptions, OptLevel, SymbolRole};
use std::fmt::Write as _;
use std::path::Path;

const MIN_REDUCTION_PCT: f64 = 20.0;
const MIN_BATCH_SPEEDUP: f64 = 1.3;
const TOL: f64 = 1e-12;

struct Case {
    name: String,
    /// Compiled at [`OptLevel::None`] — the pre-optimizer tape.
    raw: CompiledModel,
    /// Compiled at [`OptLevel::Full`].
    opt: CompiledModel,
}

struct CaseResult {
    name: String,
    raw_ops: usize,
    opt_ops: usize,
    reduction_pct: f64,
    max_rel_err: f64,
    pre_ns: f64,
    eval_ns: f64,
    batch_ns: f64,
    batch_speedup: f64,
    pass: bool,
    failures: Vec<String>,
}

fn build_cases(segments: usize) -> Vec<Case> {
    let mut cases = Vec::new();

    // Fig. 1 RC network, two symbols.
    let w = generators::fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
    let bindings = [
        SymbolBinding::capacitance("c1", vec![w.circuit.find("C1").unwrap()]),
        SymbolBinding::resistance("r2", vec![w.circuit.find("R2").unwrap()]),
    ];
    let build = |level| {
        CompiledModel::build_with_options(
            &w.circuit,
            w.input,
            w.output,
            &bindings,
            ModelOptions::order(2).with_opt_level(level),
        )
        .expect("fig1_rc model")
    };
    cases.push(Case {
        name: "fig1_rc_order2".into(),
        raw: build(OptLevel::None),
        opt: build(OptLevel::Full),
    });

    // §3.1 linearized 741, two symbols.
    let amp = generators::opamp741();
    let build = |level| {
        SymbolicAwe::new(&amp.circuit, amp.input, amp.output)
            .order(2)
            .opt_level(level)
            .symbol_named("g_out_q14", "ro_q14", SymbolRole::Conductance)
            .and_then(|b| b.symbol_named("c_comp", "c_comp", SymbolRole::Capacitance))
            .and_then(SymbolicAwe::compile)
            .expect("opamp model")
    };
    cases.push(Case {
        name: "opamp741_order2".into(),
        raw: build(OptLevel::None),
        opt: build(OptLevel::Full),
    });

    // §3.2 coupled lines, cross-talk output, two symbols.
    let spec = generators::CoupledLineSpec {
        segments,
        ..Default::default()
    };
    let lines = generators::coupled_lines(&spec);
    let build = |level| {
        SymbolicAwe::new(&lines.circuit, lines.input, lines.victim_out)
            .order(2)
            .opt_level(level)
            .symbol(SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()))
            .symbol(SymbolBinding::capacitance("cload", lines.cload.to_vec()))
            .compile()
            .expect("lines model")
    };
    cases.push(Case {
        name: format!("coupled_lines_{segments}seg_crosstalk"),
        raw: build(OptLevel::None),
        opt: build(OptLevel::Full),
    });

    cases
}

/// Deterministic evaluation points spread log-style around nominal.
fn make_points(model: &CompiledModel, n: usize) -> Vec<Vec<f64>> {
    let nominal = model.nominal().to_vec();
    (0..n)
        .map(|i| {
            let t = i as f64 / n.max(2) as f64;
            nominal
                .iter()
                .enumerate()
                .map(|(s, &v)| v * 0.5 * 4.0_f64.powf((t + 0.13 * s as f64) % 1.0))
                .collect()
        })
        .collect()
}

/// The pre-optimizer single-point path: the unoptimized tape driven
/// through the old caller-managed-scratch convention, exactly as the
/// serving layer evaluated points before this pipeline existed.
#[allow(deprecated)]
fn time_pre_pr(raw: &CompiledModel, points: &[Vec<f64>], reps: usize) -> f64 {
    let mut scratch = vec![0.0; raw.scratch_len()];
    let mut out = vec![0.0; 2 * raw.order()];
    time_median(reps, || {
        for p in points {
            raw.eval_moments_into(p, &mut scratch, &mut out);
        }
        out[0]
    })
}

fn run_case(case: &Case, points: usize, reps: usize) -> CaseResult {
    let raw_ops = case.raw.op_count();
    let opt_ops = case.opt.op_count();
    assert_eq!(
        case.opt.raw_op_count(),
        raw_ops,
        "raw_op_count must match the OptLevel::None tape"
    );
    let reduction_pct = 100.0 * (1.0 - opt_ops as f64 / raw_ops as f64);

    // Agreement gate: optimized vs unoptimized moments, relative.
    let mut max_rel_err = 0.0f64;
    for p in make_points(&case.opt, 64) {
        let a = case.raw.eval_moments(&p);
        let b = case.opt.eval_moments(&p);
        for (x, y) in a.iter().zip(&b) {
            max_rel_err = max_rel_err.max((x - y).abs() / x.abs().max(1e-300));
        }
    }

    // Timings.
    let pts = make_points(&case.opt, points);
    let n = pts.len() as f64;
    let t_pre = time_pre_pr(&case.raw, &pts, reps) / n;
    let ev = case.opt.evaluator();
    let mut out = vec![0.0; ev.n_outputs()];
    let t_eval = time_median(reps, || {
        for p in &pts {
            ev.eval_into(p, &mut out);
        }
        out[0]
    }) / n;
    let mut flat = vec![0.0; pts.len() * ev.n_outputs()];
    let t_batch = time_median(reps, || {
        ev.eval_batch(&pts, &mut flat);
        flat[0]
    }) / n;
    let batch_speedup = t_pre / t_batch;

    let mut failures = Vec::new();
    if reduction_pct < MIN_REDUCTION_PCT {
        failures.push(format!(
            "op-count reduction {reduction_pct:.1}% < {MIN_REDUCTION_PCT}%"
        ));
    }
    if max_rel_err > TOL {
        failures.push(format!("max relative error {max_rel_err:.3e} > {TOL:e}"));
    }
    if batch_speedup < MIN_BATCH_SPEEDUP {
        failures.push(format!(
            "batch speedup {batch_speedup:.2}x < {MIN_BATCH_SPEEDUP}x"
        ));
    }

    CaseResult {
        name: case.name.clone(),
        raw_ops,
        opt_ops,
        reduction_pct,
        max_rel_err,
        pre_ns: t_pre * 1e9,
        eval_ns: t_eval * 1e9,
        batch_ns: t_batch * 1e9,
        batch_speedup,
        pass: failures.is_empty(),
        failures,
    }
}

/// The evaluator's own sampled profile (see `awesym_symbolic::profile`)
/// as a JSON object: ops/sec plus the per-op-kind mix, the evidence
/// behind the batch throughput number.
fn profile_json(indent: &str) -> String {
    let p = awesym_symbolic::profile::snapshot();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "{indent}  \"sampled_calls\": {},", p.sampled_calls);
    let _ = writeln!(s, "{indent}  \"sampled_points\": {},", p.points);
    let _ = writeln!(s, "{indent}  \"sampled_tape_ops\": {},", p.tape_ops);
    let _ = writeln!(s, "{indent}  \"sampled_nanos\": {},", p.nanos);
    let _ = writeln!(s, "{indent}  \"ops_per_sec\": {:e},", p.ops_per_sec());
    let _ = writeln!(s, "{indent}  \"points_per_sec\": {:e},", p.points_per_sec());
    s.push_str(indent);
    s.push_str("  \"ops_by_kind\": {");
    let mut first = true;
    for (kind, n) in p.ops_by_kind {
        if !first {
            s.push_str(", ");
        }
        first = false;
        let _ = write!(s, "\"{kind}\": {n}");
    }
    s.push_str("}\n");
    s.push_str(indent);
    s.push('}');
    s
}

fn json_report(points: usize, reps: usize, results: &[CaseResult]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"bench\": \"tape\",");
    let _ = writeln!(s, "  \"points\": {points},");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"evaluator_profile\": {},", profile_json("  "));
    let _ = writeln!(
        s,
        "  \"gates\": {{\"min_reduction_pct\": {MIN_REDUCTION_PCT}, \"min_batch_speedup\": {MIN_BATCH_SPEEDUP}, \"tolerance\": {TOL:e}}},"
    );
    let _ = writeln!(s, "  \"pass\": {},", results.iter().all(|r| r.pass));
    s.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"ops_before\": {},", r.raw_ops);
        let _ = writeln!(s, "      \"ops_after\": {},", r.opt_ops);
        let _ = writeln!(s, "      \"reduction_pct\": {:.2},", r.reduction_pct);
        let _ = writeln!(s, "      \"max_rel_err\": {:e},", r.max_rel_err);
        let _ = writeln!(s, "      \"single_point_ns_pre\": {:.1},", r.pre_ns);
        let _ = writeln!(s, "      \"single_point_ns_evaluator\": {:.1},", r.eval_ns);
        let _ = writeln!(s, "      \"batch_ns_per_point\": {:.1},", r.batch_ns);
        let _ = writeln!(s, "      \"batch_points_per_sec\": {:e},", 1e9 / r.batch_ns);
        let _ = writeln!(s, "      \"batch_speedup_vs_pre\": {:.3},", r.batch_speedup);
        let _ = writeln!(s, "      \"pass\": {}", r.pass);
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--out" => {
                out_path = Some(
                    it.next()
                        .unwrap_or_else(|| panic!("--out needs a path"))
                        .clone(),
                )
            }
            bad => panic!("unknown argument '{bad}' (--smoke, --out PATH)"),
        }
    }
    // Full mode takes the median of 15 reps: each timed pass is only
    // ~100 µs, so reps are nearly free next to the workload compiles,
    // and the wider median keeps the bench_gate comparison stable.
    let (segments, points, reps) = if smoke { (60, 512, 3) } else { (200, 4096, 15) };

    println!("compiling workloads at opt levels none/full…");
    let cases = build_cases(segments);
    // Scope the evaluator profile to the case runs (not compilation).
    awesym_symbolic::profile::reset();
    let results: Vec<CaseResult> = cases.iter().map(|c| run_case(c, points, reps)).collect();

    println!(
        "\n{:<32} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "case", "ops", "opt", "cut%", "pre ns/pt", "eval ns", "batch ns", "speedup"
    );
    for r in &results {
        println!(
            "{:<32} {:>8} {:>8} {:>7.1}% {:>10.1} {:>10.1} {:>10.1} {:>8.2}x",
            r.name,
            r.raw_ops,
            r.opt_ops,
            r.reduction_pct,
            r.pre_ns,
            r.eval_ns,
            r.batch_ns,
            r.batch_speedup
        );
        for f in &r.failures {
            println!("  FAIL: {f}");
        }
    }

    let out = out_path.map_or_else(
        || Path::new("results").join("BENCH_tape.json"),
        std::path::PathBuf::from,
    );
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, json_report(points, reps, &results)).expect("write report");
    println!("\nwrote {}", out.display());

    if results.iter().any(|r| !r.pass) {
        eprintln!("tape_bench: gates failed");
        std::process::exit(1);
    }
}
