//! Streaming Monte Carlo timing benchmark: samples/s of the compiled
//! gate-chain yield engine at 1/2/4/8 workers, plus the determinism check
//! (bit-identical summaries across worker counts).
//!
//! ```text
//! cargo run --release -p awesym-bench --bin timing_bench
//! cargo run --release -p awesym-bench --bin timing_bench -- --samples 1e6 --reps 7
//! cargo run --release -p awesym-bench --bin timing_bench -- --smoke
//! ```
//!
//! Emits `results/BENCH_timing.json`. Absolute samples/s belongs to this
//! host; the reproduction targets are (a) the determinism flag and (b) the
//! worker-scaling shape, which `bench_gate` checks against a core-count
//! aware floor (`host_cpus` is recorded in the report for that reason: a
//! 1-core container cannot show a 4x parallel speedup, an 8-core host
//! must).
//!
//! Engines are constructed once per worker count and reused across reps —
//! the persistent-pool design means reps measure steady-state throughput,
//! not thread/evaluator setup.

use awesym_bench::time_median;
use awesym_timing::{ChainSpec, GateChain, McConfig, McEngine, McReport, QuantileGrid};
use awesymbolic::parse_value;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct WorkerResult {
    workers: usize,
    secs: f64,
    samples_per_sec: f64,
    report: McReport,
}

struct RunParams {
    stages: usize,
    samples: u64,
    block: usize,
    reps: usize,
    host_cpus: usize,
}

fn json_report(
    params: &RunParams,
    chain: &GateChain,
    results: &[WorkerResult],
    deterministic: bool,
) -> String {
    let base = &results[0].report.summary;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"timing\",");
    let _ = writeln!(s, "  \"stages\": {},", params.stages);
    let _ = writeln!(s, "  \"samples\": {},", params.samples);
    let _ = writeln!(s, "  \"block_size\": {},", params.block);
    let _ = writeln!(s, "  \"reps\": {},", params.reps);
    let _ = writeln!(s, "  \"host_cpus\": {},", params.host_cpus);
    let _ = writeln!(s, "  \"tape_ops\": {},", chain.op_count());
    let _ = writeln!(s, "  \"nominal_delay_s\": {:e},", chain.nominal_delay());
    let _ = writeln!(s, "  \"deterministic_across_workers\": {deterministic},");
    let _ = writeln!(s, "  \"summary\": {{");
    let _ = writeln!(s, "    \"mean_s\": {:e},", base.mean);
    let _ = writeln!(s, "    \"std_dev_s\": {:e},", base.std_dev);
    let _ = writeln!(s, "    \"p50_s\": {:e},", base.p50.unwrap_or(f64::NAN));
    let _ = writeln!(s, "    \"p95_s\": {:e},", base.p95.unwrap_or(f64::NAN));
    let _ = writeln!(s, "    \"p997_s\": {:e},", base.p997.unwrap_or(f64::NAN));
    let _ = writeln!(
        s,
        "    \"yield\": {:.6},",
        base.yield_fraction.unwrap_or(f64::NAN)
    );
    let _ = writeln!(s, "    \"invalid\": {}", base.invalid);
    let _ = writeln!(s, "  }},");
    s.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"workers\": {}, \"secs\": {:e}, \"samples_per_sec\": {:e}, \"speedup_vs_1\": {:e}}}{comma}",
            r.workers,
            r.secs,
            r.samples_per_sec,
            results[0].secs / r.secs,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stages = 8usize;
    let mut samples = 1_000_000u64;
    let mut block = McConfig::DEFAULT_BLOCK;
    // Median of 15: one rep is a fraction of a second at 10^6 samples, and
    // the wide median keeps the bench_gate comparison stable.
    let mut reps = 15usize;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = |it: &mut std::slice::Iter<String>, flag: &str| -> f64 {
            it.next()
                .and_then(|v| parse_value(v).or_else(|| v.parse().ok()))
                .unwrap_or_else(|| panic!("{flag} needs a number"))
        };
        match a.as_str() {
            "--stages" => stages = val(&mut it, "--stages") as usize,
            "--samples" => samples = val(&mut it, "--samples") as u64,
            "--block" => block = val(&mut it, "--block") as usize,
            "--reps" => reps = val(&mut it, "--reps") as usize,
            // CI smoke: small enough to finish in seconds in any profile.
            "--smoke" => {
                samples = 50_000;
                reps = 3;
            }
            "--out" => {
                out_path = Some(
                    it.next()
                        .unwrap_or_else(|| panic!("--out needs a path"))
                        .clone(),
                )
            }
            other => panic!("unknown argument '{other}'"),
        }
    }
    assert!(stages > 0 && samples > 0 && block > 0 && reps > 0);

    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("compiling {stages}-stage gate chain…");
    let spec = ChainSpec::uniform(stages);
    let chain = GateChain::compile(&spec).expect("chain compiles");
    println!(
        "chain: {} tape ops, nominal delay {:.4e} s; {samples} samples × {reps} reps, host_cpus {host_cpus}",
        chain.op_count(),
        chain.nominal_delay()
    );
    let grid = QuantileGrid::around(chain.nominal_delay(), 64.0, QuantileGrid::DEFAULT_BINS);
    let cfg = McConfig::new(samples, 0xBE9C, grid)
        .with_block_size(block)
        .with_deadline(1.25 * chain.nominal_delay());
    let task = Arc::new(chain);

    println!("\n{:>8} {:>14} {:>10}", "workers", "samples/s", "speedup");
    let mut results: Vec<WorkerResult> = Vec::new();
    for &w in &WORKER_COUNTS {
        let registry = awesym_obs::Registry::new();
        let engine = McEngine::new(Arc::clone(&task), w, &registry);
        let mut report = None;
        let secs = time_median(reps, || {
            report = Some(engine.run(&cfg));
        });
        let report = report.expect("at least one rep ran");
        let samples_per_sec = samples as f64 / secs;
        let speedup = results.first().map_or(1.0, |r| r.secs / secs);
        println!("{w:>8} {samples_per_sec:>14.0} {speedup:>9.2}x");
        results.push(WorkerResult {
            workers: w,
            secs,
            samples_per_sec,
            report,
        });
    }

    // Determinism: every worker count must produce the same summary, bit
    // for bit. A false flag here fails the bench gate.
    let deterministic = results
        .iter()
        .all(|r| r.report.summary == results[0].report.summary);
    println!(
        "\ndeterministic across worker counts: {}",
        if deterministic {
            "yes (bit-identical)"
        } else {
            "NO — BUG"
        }
    );

    let out = out_path.map_or_else(
        || Path::new("results").join("BENCH_timing.json"),
        std::path::PathBuf::from,
    );
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(
        &out,
        json_report(
            &RunParams {
                stages,
                samples,
                block,
                reps,
                host_cpus,
            },
            &task,
            &results,
            deterministic,
        ),
    )
    .expect("write report");
    println!("wrote {}", out.display());
}
