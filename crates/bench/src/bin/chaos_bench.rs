//! Cross-shard chaos benchmark: quantifies how much a seeded fault storm
//! on one shard moves its *neighbor's* latency and throughput.
//!
//! ```text
//! cargo run --release -p awesym-bench --features fault-injection --bin chaos_bench
//! ```
//!
//! Requires `--features fault-injection`. Three phases, all on a
//! two-shard server with a victim model on shard 0 and a healthy model
//! on shard 1:
//!
//! 1. **fault-free** — one reference request with no plan installed;
//!    its `results` subtree is the bit-identity reference.
//! 2. **baseline** — a *null* storm (a [`FaultPlan`] with every rate at
//!    zero, targeted at the victim shard) is installed while the healthy
//!    shard is timed. Installing any plan switches the batch engine onto
//!    its instrumented per-point path on every shard, so this phase
//!    prices that path — not the storm. The same victim request is
//!    interleaved before every timed healthy request so both phases see
//!    identical cache state.
//! 3. **storm** — the real plan (seeded 10% panics plus a deadline
//!    storm: slow faults that push the victim's requests past their
//!    `deadline_ms`), with the identical interleave. Victim requests run
//!    *serially* between the timed healthy requests: on a small host a
//!    concurrent storm would measure CPU contention, not crash
//!    isolation, and the serial interleave is deterministic on any core
//!    count.
//!
//! The storm-vs-baseline p99/throughput ratios isolate supervisor,
//! breaker, and crash-recovery interference from the instrumentation
//! cost, and every healthy response in every phase must stay
//! bit-identical to the fault-free reference. `results/BENCH_chaos.json`
//! records all three phases; `bench_gate` enforces the envelope.

use awesym_serve::faults::{self, FaultPlan};
use awesym_serve::{shard_of, Server, ServerConfig};
use serde::Content;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

const NETLIST: &str = "* fig1\nvin in 0 1\nR1 in 1 1k\nC1 1 0 1n\nR2 1 2 1k\nC2 2 0 1n\n.end\n";

fn compile_line(name: &str) -> String {
    format!(
        r#"{{"cmd":"compile","name":"{name}","netlist":{netlist},"input":"vin","output":"2","symbols":["C1","R2:r"],"order":2}}"#,
        netlist = serde_json::to_string(&Content::Str(NETLIST.into())).expect("netlist string")
    )
}

fn batch_line(model: &str, n: usize, extra: &str) -> String {
    let pts: Vec<String> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            format!("[{:e},{:e}]", 0.5e-9 + 3e-9 * t, 300.0 + 4000.0 * t)
        })
        .collect();
    format!(
        r#"{{"cmd":"batch","model":"{model}","points":[{}],"workers":2{extra}}}"#,
        pts.join(",")
    )
}

fn parse(server: &Server, line: &str) -> Content {
    let resp = server.handle_line(line).expect("non-empty request line");
    serde_json::from_str(resp.text()).expect("response is JSON")
}

fn ok_of(c: &Content) -> bool {
    c.get("ok").and_then(Content::as_bool).unwrap_or(false)
}

/// The `results` subtree re-serialized — the bit-identity unit (the head
/// carries wall-clock fields that legitimately vary between runs).
fn results_json(c: &Content) -> String {
    serde_json::to_string(c.get("results").expect("batch has results")).expect("serialize results")
}

/// First generated model name that [`shard_of`] places on `want`.
fn name_on_shard(shards: usize, want: usize) -> String {
    (0..)
        .map(|i| format!("chaos-{i}"))
        .find(|n| shard_of(n, shards) == want)
        .expect("some name lands on every shard")
}

struct Phase {
    p50_us: f64,
    p99_us: f64,
    points_per_sec: f64,
}

fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let idx = ((n as f64 * q).ceil() as usize).clamp(1, n) - 1;
    sorted[idx] * 1e6
}

/// Times `reps` healthy requests, calling `between` before each one
/// (the storm interleave; a no-op in the baseline phase). Every response
/// must match `reference` bit-for-bit.
fn run_phase(
    server: &Server,
    healthy_req: &str,
    reference: &str,
    reps: usize,
    points: usize,
    mut between: impl FnMut(&Server),
) -> Phase {
    // One unmeasured pass absorbs one-time costs (lazy inits, first
    // touch of the interleave path) before the timed reps.
    between(server);
    std::hint::black_box(parse(server, healthy_req));
    let mut lat: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        between(server);
        let t0 = Instant::now();
        let resp = parse(server, healthy_req);
        lat.push(t0.elapsed().as_secs_f64());
        assert!(ok_of(&resp), "healthy request failed");
        assert_eq!(
            results_json(&resp),
            reference,
            "healthy results drifted from the fault-free reference"
        );
    }
    let total: f64 = lat.iter().sum();
    lat.sort_by(f64::total_cmp);
    Phase {
        p50_us: percentile_us(&lat, 0.50),
        p99_us: percentile_us(&lat, 0.99),
        points_per_sec: (points * reps) as f64 / total,
    }
}

struct Report {
    points: usize,
    reps: usize,
    host_cpus: usize,
    baseline: Phase,
    storm: Phase,
    healthy_bit_identical: bool,
    victim_requests: u64,
    victim_deadline_exceeded: u64,
    victim_restarts: u64,
    healthy_worker_deaths: u64,
}

fn json_report(r: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"chaos\",");
    let _ = writeln!(s, "  \"points\": {},", r.points);
    let _ = writeln!(s, "  \"reps\": {},", r.reps);
    let _ = writeln!(s, "  \"host_cpus\": {},", r.host_cpus);
    for (name, p) in [("baseline", &r.baseline), ("storm", &r.storm)] {
        let _ = writeln!(
            s,
            "  \"{name}\": {{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"points_per_sec\": {:e}}},",
            p.p50_us, p.p99_us, p.points_per_sec
        );
    }
    let _ = writeln!(
        s,
        "  \"p99_ratio\": {:e},",
        r.storm.p99_us / r.baseline.p99_us
    );
    let _ = writeln!(
        s,
        "  \"throughput_ratio\": {:e},",
        r.storm.points_per_sec / r.baseline.points_per_sec
    );
    let _ = writeln!(
        s,
        "  \"healthy_bit_identical\": {},",
        r.healthy_bit_identical
    );
    let _ = writeln!(s, "  \"victim_requests\": {},", r.victim_requests);
    let _ = writeln!(
        s,
        "  \"victim_deadline_exceeded\": {},",
        r.victim_deadline_exceeded
    );
    let _ = writeln!(s, "  \"victim_restarts\": {},", r.victim_restarts);
    let _ = writeln!(
        s,
        "  \"healthy_worker_deaths\": {}",
        r.healthy_worker_deaths
    );
    s.push_str("}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut points = 400usize;
    let mut reps = 60usize;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = |it: &mut std::slice::Iter<String>, flag: &str| {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a positive integer"))
        };
        match a.as_str() {
            "--points" => points = val(&mut it, "--points"),
            "--reps" => reps = val(&mut it, "--reps"),
            "--out" => {
                out_path = Some(
                    it.next()
                        .unwrap_or_else(|| panic!("--out needs a path"))
                        .clone(),
                )
            }
            other => panic!("unknown argument '{other}'"),
        }
    }

    // Injected panics are expected by the thousand; silence their spam.
    std::panic::set_hook(Box::new(|_| {}));

    let server = Server::with_config(ServerConfig {
        shards: 2,
        shard_workers: 2,
        ..ServerConfig::default()
    });
    let victim = name_on_shard(2, 0);
    let healthy = name_on_shard(2, 1);
    assert!(ok_of(&parse(&server, &compile_line(&victim))));
    assert!(ok_of(&parse(&server, &compile_line(&healthy))));
    let healthy_req = batch_line(&healthy, points, "");
    let victim_req = batch_line(&victim, points / 2, r#","deadline_ms":1"#);

    // Phase 1: fault-free bit-identity reference.
    faults::clear();
    let reference = results_json(&parse(&server, &healthy_req));

    // Phase 2: null storm — prices the instrumented per-point path and
    // the victim interleave's cache pollution, with no actual faults.
    faults::install(FaultPlan {
        seed: 0xBA5E,
        target_shard: Some(0),
        ..FaultPlan::default()
    });
    let baseline = run_phase(&server, &healthy_req, &reference, reps, points, |s| {
        std::hint::black_box(parse(s, &victim_req));
    });

    // Phase 3: the real storm, interleaved serially with the timed
    // healthy requests.
    faults::install(FaultPlan {
        seed: 0xC4A05,
        panic_rate_pct: 10,
        slow_rate_pct: 30,
        slow: Duration::from_millis(2),
        target_shard: Some(0),
        ..FaultPlan::default()
    });
    let mut victim_deadline_exceeded = 0u64;
    // The interleave fires reps + 1 victim requests (one inside the
    // phase's unmeasured warm-up pass).
    let victim_requests = (reps + 1) as u64;
    let storm = run_phase(&server, &healthy_req, &reference, reps, points, |s| {
        let v = parse(s, &victim_req);
        if v.get("deadline_exceeded").and_then(Content::as_bool) == Some(true) {
            victim_deadline_exceeded += 1;
        }
    });
    faults::clear();

    let health = parse(&server, r#"{"cmd":"health"}"#);
    let shard_field = |shard: u64, field: &str| -> u64 {
        health
            .get("shards")
            .and_then(Content::as_seq)
            .and_then(|rows| {
                rows.iter()
                    .find(|r| r.get("shard").and_then(Content::as_u64) == Some(shard))
                    .and_then(|r| r.get(field))
                    .and_then(Content::as_u64)
            })
            .expect("health shard field")
    };

    let report = Report {
        points,
        reps,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        baseline,
        storm,
        // run_phase asserts identity on every response; reaching this
        // line means it held.
        healthy_bit_identical: true,
        victim_requests,
        victim_deadline_exceeded,
        victim_restarts: shard_field(0, "restarts"),
        healthy_worker_deaths: shard_field(1, "worker_deaths"),
    };

    println!(
        "chaos: healthy shard under victim storm — p99 {:.0} us -> {:.0} us ({:.2}x), throughput {:.0} -> {:.0} pts/s ({:.2}x)",
        report.baseline.p99_us,
        report.storm.p99_us,
        report.storm.p99_us / report.baseline.p99_us,
        report.baseline.points_per_sec,
        report.storm.points_per_sec,
        report.storm.points_per_sec / report.baseline.points_per_sec,
    );
    println!(
        "chaos: victim deadline_exceeded on {}/{} storm requests, victim restarts {}, healthy worker deaths {}",
        report.victim_deadline_exceeded,
        report.victim_requests,
        report.victim_restarts,
        report.healthy_worker_deaths
    );

    let out = out_path.map_or_else(
        || Path::new("results").join("BENCH_chaos.json"),
        std::path::PathBuf::from,
    );
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, json_report(&report)).expect("write report");
    println!("wrote {}", out.display());
}
