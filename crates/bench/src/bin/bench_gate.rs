//! Benchmark regression gate: compares fresh `tape_bench`/`serve_bench`
//! reports against the committed baselines in `results/` and fails when
//! any tracked throughput metric regresses by more than the threshold
//! (default 15 %, `--max-regression-pct` or `BENCH_GATE_MAX_REGRESSION_PCT`
//! to override).
//!
//! ```sh
//! cargo run --release -p awesym-bench --bin bench_gate -- \
//!     --fresh target/bench_fresh --baseline results [--max-regression-pct 15]
//! ```
//!
//! Tracked metrics:
//!
//! - `BENCH_tape.json`: per-case `batch_points_per_sec`;
//! - `BENCH_serve.json`: per-case `single_points_per_sec` and the best
//!   batch `points_per_sec` across worker counts;
//! - `BENCH_timing.json`: per-worker-count `samples_per_sec`.
//!
//! The fresh `BENCH_timing.json` additionally carries two structural
//! checks that are not baseline comparisons:
//!
//! - `deterministic_across_workers` must be `true` (bit-identical Monte
//!   Carlo summaries at every worker count);
//! - the measured multi-worker speedup must reach a core-count-aware
//!   floor, `min(4.0, 0.5 × min(8, host_cpus))`, using the `host_cpus`
//!   recorded in the report. On an 8-core host this enforces the full 4x
//!   at 8 workers; a 1-core container (where parallel speedup is
//!   physically impossible) only has to stay near flat.
//!
//! The fresh `BENCH_serve.json` carries one more structural check: the
//! serialize-stage mean in `observability.stages` must not exceed the
//! eval-stage mean (the binary wire format keeps response encoding
//! cheaper than evaluation; see `docs/wire-format.md`).
//!
//! Only *regressions* fail; faster-than-baseline results pass (CI hosts
//! are noisy, so the threshold is deliberately generous — the gate exists
//! to catch order-of-magnitude slips like an accidental debug-path or
//! O(n²) reintroduction, not 2 % jitter). A fresh case missing from the
//! baseline passes with a note (new benchmarks shouldn't fail their
//! introducing PR); a baseline case missing from the fresh run fails
//! (coverage must not silently shrink).

use serde::Content;
use std::path::Path;
use std::process::ExitCode;

const DEFAULT_MAX_REGRESSION_PCT: f64 = 15.0;

struct Metric {
    /// `file :: case :: metric` label for reporting.
    label: String,
    points_per_sec: f64,
}

fn load(path: &Path) -> Result<Content, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{} is not JSON: {e}", path.display()))
}

fn case_name(case: &Content) -> String {
    case.get("name")
        .and_then(Content::as_str)
        .unwrap_or("<unnamed>")
        .to_string()
}

fn need_f64(case: &Content, key: &str, label: &str) -> Result<f64, String> {
    case.get(key)
        .and_then(Content::as_f64)
        .ok_or_else(|| format!("{label}: missing numeric '{key}'"))
}

/// Tracked metrics of one `BENCH_tape.json` report.
fn tape_metrics(report: &Content, file: &str) -> Result<Vec<Metric>, String> {
    let cases = report
        .get("cases")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'cases' array"))?;
    cases
        .iter()
        .map(|case| {
            let name = case_name(case);
            let label = format!("{file} :: {name} :: batch_points_per_sec");
            let points_per_sec = need_f64(case, "batch_points_per_sec", &label)?;
            Ok(Metric {
                label,
                points_per_sec,
            })
        })
        .collect()
}

/// Tracked metrics of one `BENCH_serve.json` report.
fn serve_metrics(report: &Content, file: &str) -> Result<Vec<Metric>, String> {
    let cases = report
        .get("cases")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'cases' array"))?;
    let mut out = Vec::new();
    for case in cases {
        let name = case_name(case);
        let label = format!("{file} :: {name} :: single_points_per_sec");
        out.push(Metric {
            points_per_sec: need_f64(case, "single_points_per_sec", &label)?,
            label,
        });
        let batches = case
            .get("batch")
            .and_then(Content::as_seq)
            .ok_or_else(|| format!("{file} :: {name}: missing 'batch' array"))?;
        let best = batches
            .iter()
            .filter_map(|b| b.get("points_per_sec").and_then(Content::as_f64))
            .fold(f64::NEG_INFINITY, f64::max);
        if !best.is_finite() {
            return Err(format!("{file} :: {name}: no batch points_per_sec"));
        }
        out.push(Metric {
            label: format!("{file} :: {name} :: best_batch_points_per_sec"),
            points_per_sec: best,
        });
    }
    Ok(out)
}

/// Tracked metrics of one `BENCH_timing.json` report.
fn timing_metrics(report: &Content, file: &str) -> Result<Vec<Metric>, String> {
    let runs = report
        .get("runs")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'runs' array"))?;
    runs.iter()
        .map(|run| {
            let workers = run
                .get("workers")
                .and_then(Content::as_f64)
                .ok_or_else(|| format!("{file}: run missing 'workers'"))?
                as u64;
            let label = format!("{file} :: workers={workers} :: samples_per_sec");
            let points_per_sec = need_f64(run, "samples_per_sec", &label)?;
            Ok(Metric {
                label,
                points_per_sec,
            })
        })
        .collect()
}

/// Structural check on the fresh serve report: with the binary wire
/// format driving the canonical stage histograms, serializing a batch
/// must be cheaper than evaluating it. A serialize-stage mean above the
/// eval-stage mean means the encoder fell off the columnar fast path
/// (e.g. someone reintroduced a text round-trip). Returns failure lines.
fn serve_checks(report: &Content, file: &str) -> Result<Vec<String>, String> {
    let stages = report
        .get("observability")
        .and_then(|o| o.get("stages"))
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'observability.stages'"))?;
    let mean_of = |name: &str| -> Result<f64, String> {
        stages
            .iter()
            .find(|s| s.get("stage").and_then(Content::as_str) == Some(name))
            .and_then(|s| s.get("mean_ns").and_then(Content::as_f64))
            .ok_or_else(|| format!("{file}: missing '{name}' stage mean"))
    };
    let serialize = mean_of("serialize")?;
    let eval = mean_of("eval")?;
    println!(
        "      {file}: serialize mean {serialize:.0} ns vs eval mean {eval:.0} ns \
         ({:.2}x)",
        serialize / eval
    );
    if serialize > eval {
        return Ok(vec![format!(
            "{file}: serialize-stage mean {serialize:.0} ns exceeds eval-stage mean \
             {eval:.0} ns — response encoding is no longer cheaper than evaluation"
        )]);
    }
    Ok(Vec::new())
}

/// Structural checks on the fresh timing report: the determinism flag and
/// the core-count-aware worker-scaling floor. Returns failure lines.
fn timing_checks(report: &Content, file: &str) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let deterministic = report
        .get("deterministic_across_workers")
        .and_then(Content::as_bool)
        .ok_or_else(|| format!("{file}: missing 'deterministic_across_workers'"))?;
    if !deterministic {
        failures.push(format!(
            "{file}: Monte Carlo summaries differ across worker counts (determinism broken)"
        ));
    }
    let host_cpus = report
        .get("host_cpus")
        .and_then(Content::as_f64)
        .ok_or_else(|| format!("{file}: missing 'host_cpus'"))?;
    // Full 4x is only achievable with the cores to back it: require half
    // the usable core count, capped at the 4x target the issue sets for
    // 8-worker runs on ≥8-core hosts.
    let required = (0.5 * host_cpus.min(8.0)).min(4.0);
    let runs = report
        .get("runs")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'runs' array"))?;
    let best_speedup = runs
        .iter()
        .filter_map(|r| r.get("speedup_vs_1").and_then(Content::as_f64))
        .fold(f64::NEG_INFINITY, f64::max);
    if !best_speedup.is_finite() {
        return Err(format!("{file}: no 'speedup_vs_1' in runs"));
    }
    println!(
        "      {file}: deterministic={deterministic}, best speedup {best_speedup:.2}x \
         (floor {required:.2}x at host_cpus={host_cpus})"
    );
    if best_speedup < required {
        failures.push(format!(
            "{file}: best worker speedup {best_speedup:.2}x below the \
             {required:.2}x floor for host_cpus={host_cpus}"
        ));
    }
    Ok(failures)
}

/// Compares fresh metrics against the baseline; returns human-readable
/// failure lines (empty = pass).
fn compare(fresh: &[Metric], baseline: &[Metric], max_regression_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for base in baseline {
        let Some(new) = fresh.iter().find(|m| m.label == base.label) else {
            failures.push(format!("{}: missing from fresh run", base.label));
            continue;
        };
        let regression_pct = 100.0 * (1.0 - new.points_per_sec / base.points_per_sec);
        let verdict = if regression_pct > max_regression_pct {
            failures.push(format!(
                "{}: {:.3e} -> {:.3e} pts/s ({regression_pct:.1}% regression > {max_regression_pct}%)",
                base.label, base.points_per_sec, new.points_per_sec
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:>4}  {}  {:.3e} -> {:.3e} pts/s ({:+.1}%)",
            base.label, base.points_per_sec, new.points_per_sec, -regression_pct
        );
    }
    for new in fresh {
        if !baseline.iter().any(|m| m.label == new.label) {
            println!(
                " new  {}  {:.3e} pts/s (no baseline)",
                new.label, new.points_per_sec
            );
        }
    }
    failures
}

fn gather(dir: &Path) -> Result<Vec<Metric>, String> {
    let mut metrics = tape_metrics(&load(&dir.join("BENCH_tape.json"))?, "BENCH_tape.json")?;
    metrics.extend(serve_metrics(
        &load(&dir.join("BENCH_serve.json"))?,
        "BENCH_serve.json",
    )?);
    metrics.extend(timing_metrics(
        &load(&dir.join("BENCH_timing.json"))?,
        "BENCH_timing.json",
    )?);
    Ok(metrics)
}

fn run(args: &[String]) -> Result<Vec<String>, String> {
    let mut fresh_dir: Option<String> = None;
    let mut baseline_dir: Option<String> = None;
    let mut max_regression_pct = std::env::var("BENCH_GATE_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION_PCT);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--fresh" => fresh_dir = Some(val("--fresh")?),
            "--baseline" => baseline_dir = Some(val("--baseline")?),
            "--max-regression-pct" => {
                max_regression_pct = val("--max-regression-pct")?
                    .parse()
                    .map_err(|e| format!("bad --max-regression-pct: {e}"))?
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let fresh_dir = fresh_dir.ok_or("missing --fresh DIR")?;
    let baseline_dir = baseline_dir.ok_or("missing --baseline DIR")?;
    println!(
        "bench_gate: fresh={fresh_dir} baseline={baseline_dir} threshold={max_regression_pct}%"
    );
    let fresh = gather(Path::new(&fresh_dir))?;
    let baseline = gather(Path::new(&baseline_dir))?;
    let mut failures = timing_checks(
        &load(&Path::new(&fresh_dir).join("BENCH_timing.json"))?,
        "BENCH_timing.json",
    )?;
    failures.extend(serve_checks(
        &load(&Path::new(&fresh_dir).join("BENCH_serve.json"))?,
        "BENCH_serve.json",
    )?);
    failures.extend(compare(&fresh, &baseline, max_regression_pct));
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(failures) if failures.is_empty() => {
            println!("bench_gate: all tracked metrics within threshold");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("bench_gate: {} metric(s) regressed:", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
