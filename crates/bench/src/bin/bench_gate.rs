//! Benchmark regression gate: compares fresh `tape_bench`/`serve_bench`
//! reports against the committed baselines in `results/` and fails when
//! any tracked throughput metric regresses by more than the threshold
//! (default 15 %, `--max-regression-pct` or `BENCH_GATE_MAX_REGRESSION_PCT`
//! to override).
//!
//! ```sh
//! cargo run --release -p awesym-bench --bin bench_gate -- \
//!     --fresh target/bench_fresh --baseline results [--max-regression-pct 15]
//! ```
//!
//! Tracked metrics:
//!
//! - `BENCH_tape.json`: per-case `batch_points_per_sec`;
//! - `BENCH_serve.json`: per-case `single_points_per_sec` and the best
//!   batch `points_per_sec` across worker counts;
//! - `BENCH_timing.json`: per-worker-count `samples_per_sec`.
//!
//! The fresh `BENCH_timing.json` additionally carries two structural
//! checks that are not baseline comparisons:
//!
//! - `deterministic_across_workers` must be `true` (bit-identical Monte
//!   Carlo summaries at every worker count);
//! - the measured multi-worker speedup must reach a core-count-aware
//!   floor, `min(4.0, 0.5 × min(8, host_cpus))`, using the `host_cpus`
//!   recorded in the report. On an 8-core host this enforces the full 4x
//!   at 8 workers; a 1-core container (where parallel speedup is
//!   physically impossible) only has to stay near flat.
//!
//! The fresh `BENCH_serve.json` carries two more structural checks: the
//! serialize-stage mean in `observability.stages` must not exceed the
//! eval-stage mean (the binary wire format keeps response encoding
//! cheaper than evaluation; see `docs/wire-format.md`), and the
//! persistent worker pool's `pool.runs` speedup must reach the same
//! core-count-aware floor as the timing bench — the steady-state fleet
//! path must not regress to negative scaling.
//!
//! A fresh `BENCH_chaos.json` (written by `chaos_bench`, which needs
//! `--features fault-injection`) is checked structurally when present —
//! it is host-relative, so there is no baseline comparison:
//!
//! - `healthy_bit_identical` must be `true` (the healthy shard's results
//!   under a storm on its neighbor match the fault-free run bit for bit);
//! - `healthy_worker_deaths` must be `0`;
//! - the healthy shard's storm p99 must stay inside
//!   `baseline_p99 × 1.15 + 300 µs` and its storm throughput above
//!   `85 %` of baseline. The absolute slack term covers idle-wake
//!   scheduler noise on µs-scale requests (the storm interleave puts the
//!   serving thread to sleep, and a small host pays a wake-up penalty
//!   that is not crash leakage).
//!
//! Only *regressions* fail; faster-than-baseline results pass (CI hosts
//! are noisy, so the threshold is deliberately generous — the gate exists
//! to catch order-of-magnitude slips like an accidental debug-path or
//! O(n²) reintroduction, not 2 % jitter). A fresh case missing from the
//! baseline passes with a note (new benchmarks shouldn't fail their
//! introducing PR); a baseline case missing from the fresh run fails
//! (coverage must not silently shrink).

use serde::Content;
use std::path::Path;
use std::process::ExitCode;

const DEFAULT_MAX_REGRESSION_PCT: f64 = 15.0;

struct Metric {
    /// `file :: case :: metric` label for reporting.
    label: String,
    points_per_sec: f64,
}

fn load(path: &Path) -> Result<Content, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{} is not JSON: {e}", path.display()))
}

fn case_name(case: &Content) -> String {
    case.get("name")
        .and_then(Content::as_str)
        .unwrap_or("<unnamed>")
        .to_string()
}

fn need_f64(case: &Content, key: &str, label: &str) -> Result<f64, String> {
    case.get(key)
        .and_then(Content::as_f64)
        .ok_or_else(|| format!("{label}: missing numeric '{key}'"))
}

/// Tracked metrics of one `BENCH_tape.json` report.
fn tape_metrics(report: &Content, file: &str) -> Result<Vec<Metric>, String> {
    let cases = report
        .get("cases")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'cases' array"))?;
    cases
        .iter()
        .map(|case| {
            let name = case_name(case);
            let label = format!("{file} :: {name} :: batch_points_per_sec");
            let points_per_sec = need_f64(case, "batch_points_per_sec", &label)?;
            Ok(Metric {
                label,
                points_per_sec,
            })
        })
        .collect()
}

/// Tracked metrics of one `BENCH_serve.json` report.
fn serve_metrics(report: &Content, file: &str) -> Result<Vec<Metric>, String> {
    let cases = report
        .get("cases")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'cases' array"))?;
    let mut out = Vec::new();
    for case in cases {
        let name = case_name(case);
        let label = format!("{file} :: {name} :: single_points_per_sec");
        out.push(Metric {
            points_per_sec: need_f64(case, "single_points_per_sec", &label)?,
            label,
        });
        let batches = case
            .get("batch")
            .and_then(Content::as_seq)
            .ok_or_else(|| format!("{file} :: {name}: missing 'batch' array"))?;
        let best = batches
            .iter()
            .filter_map(|b| b.get("points_per_sec").and_then(Content::as_f64))
            .fold(f64::NEG_INFINITY, f64::max);
        if !best.is_finite() {
            return Err(format!("{file} :: {name}: no batch points_per_sec"));
        }
        out.push(Metric {
            label: format!("{file} :: {name} :: best_batch_points_per_sec"),
            points_per_sec: best,
        });
    }
    Ok(out)
}

/// Tracked metrics of one `BENCH_timing.json` report.
fn timing_metrics(report: &Content, file: &str) -> Result<Vec<Metric>, String> {
    let runs = report
        .get("runs")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'runs' array"))?;
    runs.iter()
        .map(|run| {
            let workers = run
                .get("workers")
                .and_then(Content::as_f64)
                .ok_or_else(|| format!("{file}: run missing 'workers'"))?
                as u64;
            let label = format!("{file} :: workers={workers} :: samples_per_sec");
            let points_per_sec = need_f64(run, "samples_per_sec", &label)?;
            Ok(Metric {
                label,
                points_per_sec,
            })
        })
        .collect()
}

/// Structural check on the fresh serve report: with the binary wire
/// format driving the canonical stage histograms, serializing a batch
/// must be cheaper than evaluating it. A serialize-stage mean above the
/// eval-stage mean means the encoder fell off the columnar fast path
/// (e.g. someone reintroduced a text round-trip). Returns failure lines.
fn serve_checks(report: &Content, file: &str) -> Result<Vec<String>, String> {
    let stages = report
        .get("observability")
        .and_then(|o| o.get("stages"))
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'observability.stages'"))?;
    let mean_of = |name: &str| -> Result<f64, String> {
        stages
            .iter()
            .find(|s| s.get("stage").and_then(Content::as_str) == Some(name))
            .and_then(|s| s.get("mean_ns").and_then(Content::as_f64))
            .ok_or_else(|| format!("{file}: missing '{name}' stage mean"))
    };
    let serialize = mean_of("serialize")?;
    let eval = mean_of("eval")?;
    println!(
        "      {file}: serialize mean {serialize:.0} ns vs eval mean {eval:.0} ns \
         ({:.2}x)",
        serialize / eval
    );
    let mut failures = Vec::new();
    if serialize > eval {
        failures.push(format!(
            "{file}: serialize-stage mean {serialize:.0} ns exceeds eval-stage mean \
             {eval:.0} ns — response encoding is no longer cheaper than evaluation"
        ));
    }
    // Persistent-pool scaling floor: same core-count-aware formula as the
    // timing bench, applied to the steady-state fleet path.
    let pool = report
        .get("pool")
        .ok_or_else(|| format!("{file}: missing 'pool' section"))?;
    let host_cpus = pool
        .get("host_cpus")
        .and_then(Content::as_f64)
        .ok_or_else(|| format!("{file}: missing 'pool.host_cpus'"))?;
    let required = speedup_floor(host_cpus);
    let runs = pool
        .get("runs")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'pool.runs' array"))?;
    let best_speedup = runs
        .iter()
        .filter_map(|r| r.get("speedup_vs_1").and_then(Content::as_f64))
        .fold(f64::NEG_INFINITY, f64::max);
    if !best_speedup.is_finite() {
        return Err(format!("{file}: no 'speedup_vs_1' in pool.runs"));
    }
    println!(
        "      {file}: pool best speedup {best_speedup:.2}x \
         (floor {required:.2}x at host_cpus={host_cpus})"
    );
    if best_speedup < required {
        failures.push(format!(
            "{file}: pool best worker speedup {best_speedup:.2}x below the \
             {required:.2}x floor for host_cpus={host_cpus}"
        ));
    }
    Ok(failures)
}

/// Core-count-aware worker-scaling floor: half the usable core count,
/// capped at the 4x target for 8-worker runs on ≥8-core hosts.
fn speedup_floor(host_cpus: f64) -> f64 {
    (0.5 * host_cpus.min(8.0)).min(4.0)
}

/// Slack terms of the chaos isolation envelope (see module doc).
const CHAOS_P99_RATIO: f64 = 1.15;
const CHAOS_P99_SLACK_US: f64 = 300.0;
const CHAOS_MIN_THROUGHPUT_RATIO: f64 = 0.85;

/// Structural checks on a fresh `BENCH_chaos.json`: bit-identity of the
/// healthy shard under a neighbor storm, zero collateral worker deaths,
/// and the p99/throughput isolation envelope. Host-relative, so never
/// compared against a baseline. Returns failure lines.
fn chaos_checks(report: &Content, file: &str) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let flag = |name: &str| -> Result<bool, String> {
        report
            .get(name)
            .and_then(Content::as_bool)
            .ok_or_else(|| format!("{file}: missing '{name}'"))
    };
    let num = |path: &[&str]| -> Result<f64, String> {
        path.iter()
            .try_fold(report, |c, k| c.get(k))
            .and_then(Content::as_f64)
            .ok_or_else(|| format!("{file}: missing '{}'", path.join(".")))
    };
    if !flag("healthy_bit_identical")? {
        failures.push(format!(
            "{file}: healthy shard's results drifted from the fault-free run under the storm"
        ));
    }
    let collateral = num(&["healthy_worker_deaths"])?;
    if collateral != 0.0 {
        failures.push(format!(
            "{file}: {collateral} worker death(s) on the healthy shard — the storm leaked"
        ));
    }
    let base_p99 = num(&["baseline", "p99_us"])?;
    let storm_p99 = num(&["storm", "p99_us"])?;
    let p99_limit = base_p99 * CHAOS_P99_RATIO + CHAOS_P99_SLACK_US;
    let base_tp = num(&["baseline", "points_per_sec"])?;
    let storm_tp = num(&["storm", "points_per_sec"])?;
    println!(
        "      {file}: healthy p99 {base_p99:.0} -> {storm_p99:.0} us (limit {p99_limit:.0}), \
         throughput {base_tp:.0} -> {storm_tp:.0} pts/s ({:.2}x)",
        storm_tp / base_tp
    );
    if storm_p99 > p99_limit {
        failures.push(format!(
            "{file}: healthy-shard p99 {storm_p99:.0} us under storm exceeds \
             {base_p99:.0} x {CHAOS_P99_RATIO} + {CHAOS_P99_SLACK_US} us"
        ));
    }
    if storm_tp < base_tp * CHAOS_MIN_THROUGHPUT_RATIO {
        failures.push(format!(
            "{file}: healthy-shard throughput fell to {:.2}x of baseline under storm \
             (floor {CHAOS_MIN_THROUGHPUT_RATIO})",
            storm_tp / base_tp
        ));
    }
    Ok(failures)
}

/// Structural checks on the fresh timing report: the determinism flag and
/// the core-count-aware worker-scaling floor. Returns failure lines.
fn timing_checks(report: &Content, file: &str) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let deterministic = report
        .get("deterministic_across_workers")
        .and_then(Content::as_bool)
        .ok_or_else(|| format!("{file}: missing 'deterministic_across_workers'"))?;
    if !deterministic {
        failures.push(format!(
            "{file}: Monte Carlo summaries differ across worker counts (determinism broken)"
        ));
    }
    let host_cpus = report
        .get("host_cpus")
        .and_then(Content::as_f64)
        .ok_or_else(|| format!("{file}: missing 'host_cpus'"))?;
    // Full 4x is only achievable with the cores to back it.
    let required = speedup_floor(host_cpus);
    let runs = report
        .get("runs")
        .and_then(Content::as_seq)
        .ok_or_else(|| format!("{file}: missing 'runs' array"))?;
    let best_speedup = runs
        .iter()
        .filter_map(|r| r.get("speedup_vs_1").and_then(Content::as_f64))
        .fold(f64::NEG_INFINITY, f64::max);
    if !best_speedup.is_finite() {
        return Err(format!("{file}: no 'speedup_vs_1' in runs"));
    }
    println!(
        "      {file}: deterministic={deterministic}, best speedup {best_speedup:.2}x \
         (floor {required:.2}x at host_cpus={host_cpus})"
    );
    if best_speedup < required {
        failures.push(format!(
            "{file}: best worker speedup {best_speedup:.2}x below the \
             {required:.2}x floor for host_cpus={host_cpus}"
        ));
    }
    Ok(failures)
}

/// Compares fresh metrics against the baseline; returns human-readable
/// failure lines (empty = pass).
fn compare(fresh: &[Metric], baseline: &[Metric], max_regression_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for base in baseline {
        let Some(new) = fresh.iter().find(|m| m.label == base.label) else {
            failures.push(format!("{}: missing from fresh run", base.label));
            continue;
        };
        let regression_pct = 100.0 * (1.0 - new.points_per_sec / base.points_per_sec);
        let verdict = if regression_pct > max_regression_pct {
            failures.push(format!(
                "{}: {:.3e} -> {:.3e} pts/s ({regression_pct:.1}% regression > {max_regression_pct}%)",
                base.label, base.points_per_sec, new.points_per_sec
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:>4}  {}  {:.3e} -> {:.3e} pts/s ({:+.1}%)",
            base.label, base.points_per_sec, new.points_per_sec, -regression_pct
        );
    }
    for new in fresh {
        if !baseline.iter().any(|m| m.label == new.label) {
            println!(
                " new  {}  {:.3e} pts/s (no baseline)",
                new.label, new.points_per_sec
            );
        }
    }
    failures
}

fn gather(dir: &Path) -> Result<Vec<Metric>, String> {
    let mut metrics = tape_metrics(&load(&dir.join("BENCH_tape.json"))?, "BENCH_tape.json")?;
    metrics.extend(serve_metrics(
        &load(&dir.join("BENCH_serve.json"))?,
        "BENCH_serve.json",
    )?);
    metrics.extend(timing_metrics(
        &load(&dir.join("BENCH_timing.json"))?,
        "BENCH_timing.json",
    )?);
    Ok(metrics)
}

fn run(args: &[String]) -> Result<Vec<String>, String> {
    let mut fresh_dir: Option<String> = None;
    let mut baseline_dir: Option<String> = None;
    let mut max_regression_pct = std::env::var("BENCH_GATE_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION_PCT);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--fresh" => fresh_dir = Some(val("--fresh")?),
            "--baseline" => baseline_dir = Some(val("--baseline")?),
            "--max-regression-pct" => {
                max_regression_pct = val("--max-regression-pct")?
                    .parse()
                    .map_err(|e| format!("bad --max-regression-pct: {e}"))?
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let fresh_dir = fresh_dir.ok_or("missing --fresh DIR")?;
    let baseline_dir = baseline_dir.ok_or("missing --baseline DIR")?;
    println!(
        "bench_gate: fresh={fresh_dir} baseline={baseline_dir} threshold={max_regression_pct}%"
    );
    let fresh = gather(Path::new(&fresh_dir))?;
    let baseline = gather(Path::new(&baseline_dir))?;
    let mut failures = timing_checks(
        &load(&Path::new(&fresh_dir).join("BENCH_timing.json"))?,
        "BENCH_timing.json",
    )?;
    failures.extend(serve_checks(
        &load(&Path::new(&fresh_dir).join("BENCH_serve.json"))?,
        "BENCH_serve.json",
    )?);
    let chaos_path = Path::new(&fresh_dir).join("BENCH_chaos.json");
    if chaos_path.exists() {
        failures.extend(chaos_checks(&load(&chaos_path)?, "BENCH_chaos.json")?);
    } else {
        // chaos_bench needs --features fault-injection; a default bench
        // sweep legitimately omits it.
        println!("      BENCH_chaos.json: not in fresh run, chaos checks skipped");
    }
    failures.extend(compare(&fresh, &baseline, max_regression_pct));
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(failures) if failures.is_empty() => {
            println!("bench_gate: all tracked metrics within threshold");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("bench_gate: {} metric(s) regressed:", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
