//! Paper-reproduction harness: regenerates every table and figure of
//! Lee & Rohrer, "AWEsymbolic" (DAC 1992).
//!
//! ```text
//! cargo run --release -p awesym-bench --bin paper            # everything
//! cargo run --release -p awesym-bench --bin paper -- table1  # one experiment
//! ```
//!
//! CSV data lands in `results/`; the console output mirrors the paper's
//! tables. Absolute times belong to this host, not a 1992 DECstation — the
//! *shape* (who wins, by what order of magnitude, where crossovers sit) is
//! the reproduction target; see `EXPERIMENTS.md`.

use awesym_bench::{
    full_awe_moments, lines_workload, log_grid, opamp_workload, time_median, write_series_csv,
    write_surface_csv, LinesWorkload, OpAmpWorkload,
};
use awesymbolic::prelude::*;
use awesymbolic::{exact, transient, IntegrationMethod, Mna, TransientOptions, Waveform};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exp = args.first().map(String::as_str).unwrap_or("all");
    let all = exp == "all";
    let results = Path::new("results");

    let opamp = opamp_workload(2).expect("op-amp workload");
    let lines = lines_workload(1000).expect("lines workload");

    if all || exp == "eq5" {
        eq5();
    }
    if all || exp == "eq14" {
        eq14(&opamp);
    }
    if all || exp == "fig4" {
        fig4(&opamp, results);
    }
    if all || exp == "fig5" {
        fig5(&opamp, results);
    }
    if all || exp == "table1" {
        table1(&opamp);
    }
    if all || exp == "fig6" {
        fig6(&opamp, results);
    }
    if all || exp == "fig7" {
        fig7(&opamp, results);
    }
    if all || exp == "eq16" {
        eq16(&lines);
    }
    if all || exp == "fig9" {
        fig9(&lines, results);
    }
    if all || exp == "fig10" {
        fig10(&lines, results);
    }
    if all || exp == "timings" {
        timings(&opamp, &lines);
    }
    if all || exp == "awevsspice" {
        awe_vs_spice();
    }
    if all || exp == "validate" {
        validate(&opamp);
    }
    if !all
        && ![
            "eq5",
            "eq14",
            "fig4",
            "fig5",
            "table1",
            "fig6",
            "fig7",
            "eq16",
            "fig9",
            "fig10",
            "timings",
            "awevsspice",
            "validate",
        ]
        .contains(&exp)
    {
        eprintln!("unknown experiment '{exp}'");
        std::process::exit(2);
    }
}

/// §2.3: validating the symbol choice over the range spanned by the
/// symbols — "once the symbolic functions have been compiled, the cost of
/// validation is low".
fn validate(opamp: &OpAmpWorkload) {
    banner("§2.3 validation: compiled model vs full re-analysis over the range");
    use awesymbolic::SymbolBinding;
    let bindings = [
        SymbolBinding::conductance(
            "g_out_q14",
            vec![opamp.circuit.find("ro_q14").expect("ro_q14")],
        ),
        SymbolBinding::capacitance(
            "c_comp",
            vec![opamp.circuit.find("c_comp").expect("c_comp")],
        ),
    ];
    for span in [2.0, 5.0, 25.0] {
        let t0 = std::time::Instant::now();
        let err = opamp
            .model
            .validate_over_range(&opamp.circuit, opamp.input, opamp.output, &bindings, span)
            .expect("validation");
        println!(
            "  span {span:>5}x : max relative moment error {err:.3e}  ({:.1} ms)",
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
}

fn banner(s: &str) {
    println!("\n=== {s} ===");
}

/// Eq. (5)/(6): exact symbolic transfer function of the Fig. 1 circuit.
fn eq5() {
    banner("eq. (5)/(6): exact symbolic forms of the Fig. 1 RC circuit");
    let w = generators::fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
    let c = &w.circuit;
    let all = [
        SymbolBinding::conductance("G1", vec![c.find("R1").unwrap()]),
        SymbolBinding::conductance("G2", vec![c.find("R2").unwrap()]),
        SymbolBinding::capacitance("C1", vec![c.find("C1").unwrap()]),
        SymbolBinding::capacitance("C2", vec![c.find("C2").unwrap()]),
    ];
    let h = exact::exact_transfer(c, w.input, w.output, &all).expect("exact");
    print_exact("full symbolic (eq. 5)", &h, &["G1", "G2", "C1", "C2"]);

    // Eq. 6: G1 fixed at 5 S.
    let w6 = generators::fig1_rc(5.0, 1e-3, 1e-9, 1e-9);
    let c6 = &w6.circuit;
    let mixed = [
        SymbolBinding::conductance("G2", vec![c6.find("R2").unwrap()]),
        SymbolBinding::capacitance("C1", vec![c6.find("C1").unwrap()]),
        SymbolBinding::capacitance("C2", vec![c6.find("C2").unwrap()]),
    ];
    let h6 = exact::exact_transfer(c6, w6.input, w6.output, &mixed).expect("exact");
    print_exact(
        "mixed numeric-symbolic, G1 = 5 (eq. 6)",
        &h6,
        &["G2", "C1", "C2"],
    );
}

fn print_exact(title: &str, h: &exact::ExactTransfer, names: &[&str]) {
    println!("-- {title} --");
    let mut syms = awesymbolic::SymbolSet::new();
    for n in names {
        syms.intern(n);
    }
    println!("  numerator coefficients of s^k:");
    for (k, p) in h.coeffs_in_s(&h.num).iter().enumerate() {
        println!("    s^{k}: {}", p.display(&syms));
    }
    println!("  denominator coefficients of s^k:");
    for (k, p) in h.coeffs_in_s(&h.den).iter().enumerate() {
        println!("    s^{k}: {}", p.display(&syms));
    }
}

/// Eq. (14)/(15): first- and second-order symbolic forms of the 741.
fn eq14(opamp: &OpAmpWorkload) {
    banner("eq. (14)/(15): symbolic forms of the 741 (symbols g_out_q14, c_comp)");
    // First order.
    let first = SymbolicAwe::new(&opamp.circuit, opamp.input, opamp.output)
        .order(1)
        .symbol_named("g_out_q14", "ro_q14", SymbolRole::Conductance)
        .unwrap()
        .symbol_named("c_comp", "c_comp", SymbolRole::Capacitance)
        .unwrap()
        .compile()
        .expect("first-order model");
    let f = first.forms();
    println!("first order (eq. 14):");
    println!("  A0  = {}", f.dc_gain().display(first.symbols()));
    println!("  p1  = {}", f.first_order_pole().display(first.symbols()));
    // Second order: the paper prints P(x^i, y^j) shorthand; we print the
    // moment quotients the Padé consumes.
    println!("second order (eq. 15): moment quotients m_k = P_k / D^(k+1)");
    let f2 = opamp.model.forms();
    for (k, pk) in f2.p.iter().enumerate() {
        println!(
            "  P{k}: {} terms, degrees (g, c) = ({}, {})",
            pk.num_terms(),
            pk.degree_in(awesym_symbolic::Sym(0)),
            pk.degree_in(awesym_symbolic::Sym(1))
        );
    }
    println!(
        "  D : {} terms; {}",
        f2.d.num_terms(),
        f2.d.display(&f2.symbols)
    );
    println!("  m0 text: {}", f2.moment_text(0));
}

fn opamp_grid(opamp: &OpAmpWorkload, n: usize) -> (Vec<f64>, Vec<f64>) {
    let g0 = opamp.model.nominal()[0];
    let c0 = opamp.model.nominal()[1];
    (log_grid(g0, 5.0, n), log_grid(c0, 5.0, n))
}

/// Fig. 4: first pole vs (g_out_q14, Ccomp) from the first-order form.
fn fig4(opamp: &OpAmpWorkload, results: &Path) {
    banner("Fig. 4: p1(g_out_q14, Ccomp) from the first-order symbolic form");
    let first = SymbolicAwe::new(&opamp.circuit, opamp.input, opamp.output)
        .order(1)
        .symbol_named("g_out_q14", "ro_q14", SymbolRole::Conductance)
        .unwrap()
        .symbol_named("c_comp", "c_comp", SymbolRole::Capacitance)
        .unwrap()
        .compile()
        .expect("first-order model");
    let pole = first.forms().first_order_pole();
    let (gs, cs) = opamp_grid(opamp, 21);
    write_surface_csv(
        &results.join("fig4_p1.csv"),
        "g_out_q14,c_comp,p1_rad_s",
        &gs,
        &cs,
        |g, c| pole.eval(&[g, c]),
    )
    .expect("csv");
    // Console sample: corners + center.
    for &g in [gs[0], gs[10], gs[20]].iter() {
        for &c in [cs[0], cs[10], cs[20]].iter() {
            println!(
                "  g={g:.3e} c={c:.3e}  p1 = {:.4e} rad/s",
                pole.eval(&[g, c])
            );
        }
    }
    println!("  -> results/fig4_p1.csv (21x21 surface)");
}

/// Fig. 5: DC gain vs symbols from the first-order form.
fn fig5(opamp: &OpAmpWorkload, results: &Path) {
    banner("Fig. 5: DC gain(g_out_q14, Ccomp) from the symbolic form");
    let a0 = opamp.model.forms().dc_gain();
    let (gs, cs) = opamp_grid(opamp, 21);
    write_surface_csv(
        &results.join("fig5_dcgain.csv"),
        "g_out_q14,c_comp,a0",
        &gs,
        &cs,
        |g, c| a0.eval(&[g, c]),
    )
    .expect("csv");
    for &g in [gs[0], gs[20]].iter() {
        for &c in [cs[0], cs[20]].iter() {
            println!(
                "  g={g:.3e} c={c:.3e}  A0 = {:.2} dB",
                20.0 * a0.eval(&[g, c]).abs().log10()
            );
        }
    }
    println!("  -> results/fig5_dcgain.csv");
}

/// Table 1: run time for multiple datapoints, AWE vs AWEsymbolic.
fn table1(opamp: &OpAmpWorkload) {
    banner("Table 1: multi-datapoint run times (741, symbols g_out_q14/Ccomp)");
    let g0 = opamp.model.nominal()[0];
    let c0 = opamp.model.nominal()[1];
    let points = |n: usize| -> Vec<[f64; 2]> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n.max(2) as f64;
                [g0 * (0.5 + t), c0 * (0.5 + t)]
            })
            .collect()
    };
    // Incremental (per-iteration) costs.
    let ev = opamp.model.evaluator();
    let mut out = vec![0.0; ev.n_outputs()];
    let t_eval = time_median(5, || {
        for p in points(1000) {
            ev.eval_into(&p, &mut out);
        }
    }) / 1000.0;
    let t_awe = time_median(3, || {
        full_awe_moments(
            &opamp.circuit,
            &[(opamp.ro_q14, 1.0 / g0), (opamp.c_comp, c0)],
            opamp.input,
            opamp.output,
            4,
        )
    });
    let compile = opamp.compile_time.as_secs_f64();
    println!(
        "  per-iteration: AWE {:.3} ms, AWEsymbolic {:.3} µs  (ratio {:.0}x)",
        t_awe * 1e3,
        t_eval * 1e6,
        t_awe / t_eval
    );
    println!(
        "\n  {:>10} {:>14} {:>16}",
        "datapoints", "AWE (s)", "AWEsymbolic (s)"
    );
    for n in [10usize, 100, 1000] {
        let awe_total = t_awe * n as f64;
        let sym_total = compile + t_eval * n as f64;
        println!("  {n:>10} {awe_total:>14.4} {sym_total:>16.4}");
    }
    println!(
        "  (AWEsymbolic column includes the one-time {:.3} s compile)",
        compile
    );
}

/// Fig. 6: unity-gain frequency surface from the second-order model.
fn fig6(opamp: &OpAmpWorkload, results: &Path) {
    banner("Fig. 6: unity-gain frequency(g_out_q14, Ccomp), 2nd-order model");
    let (gs, cs) = opamp_grid(opamp, 15);
    write_surface_csv(
        &results.join("fig6_fu.csv"),
        "g_out_q14,c_comp,fu_hz",
        &gs,
        &cs,
        |g, c| {
            opamp
                .model
                .unity_gain_freq(&[g, c])
                .ok()
                .flatten()
                .unwrap_or(f64::NAN)
        },
    )
    .expect("csv");
    for &c in [cs[0], cs[7], cs[14]].iter() {
        let fu = opamp
            .model
            .unity_gain_freq(&[gs[7], c])
            .unwrap()
            .unwrap_or(f64::NAN);
        println!("  c_comp={c:.3e}  fu = {fu:.4e} Hz");
    }
    println!("  -> results/fig6_fu.csv");
}

/// Fig. 7: phase margin surface from the second-order model.
fn fig7(opamp: &OpAmpWorkload, results: &Path) {
    banner("Fig. 7: phase margin(g_out_q14, Ccomp), 2nd-order model");
    let (gs, cs) = opamp_grid(opamp, 15);
    write_surface_csv(
        &results.join("fig7_pm.csv"),
        "g_out_q14,c_comp,pm_deg",
        &gs,
        &cs,
        |g, c| {
            opamp
                .model
                .phase_margin(&[g, c])
                .ok()
                .flatten()
                .unwrap_or(f64::NAN)
        },
    )
    .expect("csv");
    for &c in [cs[0], cs[7], cs[14]].iter() {
        let pm = opamp
            .model
            .phase_margin(&[gs[7], c])
            .unwrap()
            .unwrap_or(f64::NAN);
        println!("  c_comp={c:.3e}  PM = {pm:.1} deg");
    }
    println!("  -> results/fig7_pm.csv");
}

/// Eq. (16)/(17): symbolic forms of the coupled-line models.
fn eq16(lines: &LinesWorkload) {
    banner("eq. (16)/(17): coupled-line symbolic forms (symbols rdrv, cload)");
    let fd = lines.direct.forms();
    println!("direct transmission, first order (eq. 16):");
    println!("  A0 = {}", fd.dc_gain().display(&fd.symbols));
    println!("  p1 = {}", fd.first_order_pole().display(&fd.symbols));
    let fx = lines.crosstalk.forms();
    println!("cross-coupling, second order (eq. 17): m_k = P_k / D^(k+1)");
    for k in 0..fx.p.len() {
        println!("  P{k}: {} terms", fx.p[k].num_terms());
    }
    println!("  D : {} terms", fx.d.num_terms());
}

/// Fig. 9: cross-talk step response as the driver resistance varies.
fn fig9(lines: &LinesWorkload, results: &Path) {
    banner("Fig. 9: cross-talk transient as Rdriver varies (Cload nominal)");
    let r0 = lines.spec.rdrv;
    let c0 = lines.spec.cload;
    let rset: Vec<f64> = [0.25, 0.5, 1.0, 2.0, 4.0].iter().map(|s| s * r0).collect();
    let ts: Vec<f64> = (0..200).map(|i| i as f64 * 2e-11).collect();
    let mut series = Vec::new();
    for &r in &rset {
        series.push(lines.crosstalk.step_response(&[r, c0], &ts).expect("step"));
    }
    write_series_csv(
        &results.join("fig9_xtalk_vs_rdrv.csv"),
        "t_s,r0.25x,r0.5x,r1x,r2x,r4x",
        &ts,
        &series,
    )
    .expect("csv");
    for (r, s) in rset.iter().zip(series.iter()) {
        let peak = s
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| if b.abs() > a.abs() { b } else { a });
        println!("  Rdrv = {r:>6.1} Ω  peak cross-talk = {peak:+.4e} V");
    }
    println!("  -> results/fig9_xtalk_vs_rdrv.csv");
}

/// Fig. 10: cross-talk step response as the load capacitance varies.
fn fig10(lines: &LinesWorkload, results: &Path) {
    banner("Fig. 10: cross-talk transient as Cload varies (Rdrv nominal)");
    let r0 = lines.spec.rdrv;
    let c0 = lines.spec.cload;
    let cset: Vec<f64> = [0.25, 0.5, 1.0, 2.0, 4.0].iter().map(|s| s * c0).collect();
    let ts: Vec<f64> = (0..200).map(|i| i as f64 * 2e-11).collect();
    let mut series = Vec::new();
    for &c in &cset {
        series.push(lines.crosstalk.step_response(&[r0, c], &ts).expect("step"));
    }
    write_series_csv(
        &results.join("fig10_xtalk_vs_cload.csv"),
        "t_s,c0.25x,c0.5x,c1x,c2x,c4x",
        &ts,
        &series,
    )
    .expect("csv");
    for (c, s) in cset.iter().zip(series.iter()) {
        let peak = s
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| if b.abs() > a.abs() { b } else { a });
        println!("  Cload = {c:>9.3e} F  peak cross-talk = {peak:+.4e} V");
    }
    println!("  -> results/fig10_xtalk_vs_cload.csv");
}

/// §3.1/§3.2 text timings.
fn timings(opamp: &OpAmpWorkload, lines: &LinesWorkload) {
    banner("text timings (§3.1 op-amp, §3.2 coupled lines)");
    // Op-amp.
    let g0 = opamp.model.nominal()[0];
    let c0 = opamp.model.nominal()[1];
    let ev = opamp.model.evaluator();
    let mut out = vec![0.0; ev.n_outputs()];
    let t_eval = time_median(5, || {
        for i in 0..1000 {
            let f = 0.5 + i as f64 / 1000.0;
            ev.eval_into(&[g0 * f, c0 * f], &mut out);
        }
    }) / 1000.0;
    let t_awe = time_median(3, || {
        full_awe_moments(
            &opamp.circuit,
            &[(opamp.ro_q14, 1.0 / g0)],
            opamp.input,
            opamp.output,
            4,
        )
    });
    println!("op-amp (paper: compile 3.03 s, eval 0.37 µs, AWE 80.4 ms):");
    println!(
        "  compile {:.4} s | eval {:.3} µs | full AWE {:.2} ms | per-iter ratio {:.0}x",
        opamp.compile_time.as_secs_f64(),
        t_eval * 1e6,
        t_awe * 1e3,
        t_awe / t_eval
    );

    // Lines.
    let r0 = lines.spec.rdrv;
    let cl0 = lines.spec.cload;
    let ev_l = lines.crosstalk.evaluator();
    let mut out_l = vec![0.0; ev_l.n_outputs()];
    let t_eval_l = time_median(3, || {
        for i in 0..200 {
            let f = 0.5 + i as f64 / 200.0;
            ev_l.eval_into(&[r0 * f, cl0 * f], &mut out_l);
        }
    }) / 200.0;
    let t_awe_l = time_median(3, || {
        full_awe_moments(
            &lines.circuit,
            &[(lines.rdrv[0], r0 * 1.1), (lines.rdrv[1], r0 * 1.1)],
            lines.input,
            lines.victim_out,
            4,
        )
    });
    println!("coupled lines (paper: AWE 1.12 s, compile 5.41 s, incremental 0.11 ms):");
    println!(
        "  compile {:.3} s | eval {:.3} µs | full AWE {:.1} ms | per-iter ratio {:.0}x",
        lines.compile_time.as_secs_f64(),
        t_eval_l * 1e6,
        t_awe_l * 1e3,
        t_awe_l / t_eval_l
    );
}

/// The AWE-vs-traditional-simulation claim (§1: AWE is more than an order
/// of magnitude faster than SPICE-class transient analysis).
fn awe_vs_spice() {
    banner("AWE vs transient baseline (paper: AWE >= 10x faster than SPICE)");
    for n in [100usize, 400, 1000] {
        let w = generators::rc_ladder(n, 10.0, 0.1e-12);
        let mna = Mna::build(&w.circuit).expect("mna");
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).expect("awe");
        let rom = awe.rom_stable(3).expect("rom");
        let tau = 1.0 / rom.dominant_pole().unwrap().abs();
        let t_awe = time_median(3, || {
            let a = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
            a.rom_stable(3).unwrap()
        });
        let t_tran = time_median(1, || {
            transient(
                &mna,
                w.input,
                &Waveform::Step { amplitude: 1.0 },
                &TransientOptions {
                    t_stop: 5.0 * tau,
                    dt: tau / 200.0,
                    method: IntegrationMethod::Trapezoidal,
                },
                &[w.output],
            )
            .unwrap()
        });
        println!(
            "  ladder n={n:>5}: AWE {:.3} ms | transient {:.3} ms | ratio {:.1}x",
            t_awe * 1e3,
            t_tran * 1e3,
            t_tran / t_awe
        );
    }
}
