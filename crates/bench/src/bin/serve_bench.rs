//! Serving-runtime benchmark: single-point evaluation vs. `evaluate_batch`
//! throughput at 1/2/4/8 workers on the Table 1 workloads.
//!
//! ```text
//! cargo run --release -p awesym-bench --bin serve_bench
//! cargo run --release -p awesym-bench --bin serve_bench -- --points 5000 --reps 7
//! ```
//!
//! Emits `results/BENCH_serve.json` plus a console table. Absolute numbers
//! belong to this host; the reproduction target is the *scaling shape*
//! (batch amortization and worker speedup over the serial path).

use awesym_bench::{lines_workload, opamp_workload, time_median};
use awesym_serve::{
    decode_frame, evaluate_batch, BatchOutput, PoolConfig, Server, ServerConfig, WorkerPool,
};
use awesymbolic::CompiledModel;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Case {
    name: String,
    model: CompiledModel,
    points: Vec<Vec<f64>>,
}

/// Deterministic evaluation grid: each point scales every nominal symbol
/// value by a factor swept over [0.5, 2.0], staggered per symbol so the
/// points are not collinear.
fn make_points(model: &CompiledModel, n: usize) -> Vec<Vec<f64>> {
    let nominal = model.nominal().to_vec();
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1).max(1) as f64;
            nominal
                .iter()
                .enumerate()
                .map(|(s, &v)| {
                    let phase = (t + s as f64 * 0.37).fract();
                    v * (0.5 + 1.5 * phase)
                })
                .collect()
        })
        .collect()
}

struct CaseResult {
    name: String,
    symbols: usize,
    order: usize,
    op_count: usize,
    single_secs: f64,
    batch: Vec<(usize, f64)>,
}

fn run_case(case: &Case, reps: usize) -> CaseResult {
    let n = case.points.len();
    // Serial baseline: one `eval_moments` call per point, fresh allocation
    // each time — the cost a naive client pays without the batch engine.
    let single_secs = time_median(reps, || {
        for p in &case.points {
            std::hint::black_box(case.model.eval_moments(p));
        }
    });
    let batch = WORKER_COUNTS
        .iter()
        .map(|&w| {
            let secs = time_median(reps, || {
                let out = evaluate_batch(&case.model, &case.points, &BatchOutput::Moments, Some(w));
                assert!(out.iter().all(Result::is_ok), "batch eval failed");
                std::hint::black_box(out);
            });
            (w, secs)
        })
        .collect();
    println!(
        "{}: {n} points, serial {:.1} ms",
        case.name,
        single_secs * 1e3
    );
    CaseResult {
        name: case.name.clone(),
        symbols: case.model.symbols().len(),
        order: case.model.order(),
        op_count: case.model.op_count(),
        single_secs,
        batch,
    }
}

struct ObsResult {
    batch_points: usize,
    on_points_per_sec: f64,
    off_points_per_sec: f64,
    overhead_pct: f64,
    stages: Vec<(String, u64, u64, f64)>,
    serialize_by_encoding: Vec<(String, u64, u64, f64)>,
}

/// Builds the 1000-point batch request line, optionally negotiating the
/// binary-v1 response frame.
fn batch_request(model: &CompiledModel, batch_points: usize, binary: bool) -> String {
    let pts = make_points(model, batch_points);
    let mut req = String::from(r#"{"cmd":"batch","model":"m","#);
    if binary {
        req.push_str(r#""encoding":"binary-v1","#);
    }
    req.push_str(r#""points":["#);
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            req.push(',');
        }
        req.push('[');
        for (j, v) in p.iter().enumerate() {
            if j > 0 {
                req.push(',');
            }
            let _ = write!(req, "{v:e}");
        }
        req.push(']');
    }
    req.push_str("]}");
    req
}

/// Measures what the observability layer itself costs on the full
/// request path: the same 1000-point batch request driven through
/// `Server::handle_line` with stage timing + tracing on vs off, on the
/// binary-v1 wire encoding (the throughput configuration). The observe-on
/// server's stage histograms yield the canonical per-stage breakdown
/// (parse → lookup → eval → degrade → serialize) the report publishes;
/// an extra NDJSON pass against a second observed server fills the
/// per-encoding serialize split (`serialize_ndjson` vs
/// `serialize_binary`) without polluting the binary-driven canonical
/// stage histograms.
fn run_obs_overhead(model: CompiledModel, reps: usize) -> ObsResult {
    let batch_points = 1000usize;
    let req_bin = batch_request(&model, batch_points, true);
    let req_nd = batch_request(&model, batch_points, false);

    let make = |observe: bool| {
        let server = Server::with_config(ServerConfig {
            observe,
            ..ServerConfig::default()
        });
        server.insert_model("m", model.clone());
        server
    };
    let observed = make(true);
    let bare = make(false);
    let run_req = |server: &Server| {
        let resp = server.handle_line(&req_bin).expect("batch response");
        std::hint::black_box(resp.body.len());
    };
    // Sanity-check the frame once outside the timed loops.
    {
        let resp = observed.handle_line(&req_bin).expect("batch response");
        let frame = decode_frame(&resp.body).expect("well-formed binary frame");
        assert_eq!(frame.ok_count as usize, batch_points, "batch eval failed");
    }
    // The instrumented and bare servers are measured in alternating
    // rounds so slow drift (allocator state, frequency scaling) hits
    // both the same way; a single on-block followed by an off-block
    // would attribute the drift to the observability layer.
    run_req(&observed);
    run_req(&bare);
    let rounds = reps.max(9);
    let (mut on, mut off) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        on.push(time_median(3, || run_req(&observed)));
        off.push(time_median(3, || run_req(&bare)));
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let on_points_per_sec = batch_points as f64 / median(on);
    let off_points_per_sec = batch_points as f64 / median(off);
    let overhead_pct = 100.0 * (off_points_per_sec / on_points_per_sec - 1.0);
    // NDJSON pass on a fresh observed server: fills serialize_ndjson for
    // the per-encoding split while the canonical stage breakdown above
    // stays representative of the binary throughput path.
    let observed_nd = make(true);
    for _ in 0..rounds {
        let resp = observed_nd.handle_line(&req_nd).expect("batch response");
        assert!(resp.text().contains("\"ok\":true"));
        std::hint::black_box(resp.body.len());
    }
    let snap = observed.stats().snapshot();
    let snap_nd = observed_nd.stats().snapshot();
    let stages = snap
        .stages
        .into_iter()
        .map(|st| (st.stage, st.count, st.total_ns, st.mean_ns))
        .collect();
    let serialize_by_encoding = snap
        .serialize_encodings
        .into_iter()
        .chain(snap_nd.serialize_encodings)
        .filter(|st| st.count > 0)
        .map(|st| (st.stage, st.count, st.total_ns, st.mean_ns))
        .collect();
    ObsResult {
        batch_points,
        on_points_per_sec,
        off_points_per_sec,
        overhead_pct,
        stages,
        serialize_by_encoding,
    }
}

struct PoolRun {
    workers: usize,
    secs: f64,
    points_per_sec: f64,
    speedup_vs_1: f64,
}

struct PoolResult {
    batch_points: usize,
    host_cpus: usize,
    runs: Vec<PoolRun>,
}

/// Times a 1200-point batch through the persistent `WorkerPool` at each
/// worker count, against the same pool's own 1-worker time. Unlike the
/// per-case `evaluate_batch` numbers (which pay thread spawn per batch),
/// this measures the steady-state fleet path: workers stay parked on the
/// queue between batches, so the speedup curve is what a serving shard
/// actually sees. `host_cpus` is recorded so the gate can apply a
/// core-count-aware scaling floor instead of demanding 4x from a laptop.
fn run_pool_scaling(model: &CompiledModel, reps: usize) -> PoolResult {
    let batch_points = 1200usize;
    let model = Arc::new(model.clone());
    let points = Arc::new(make_points(&model, batch_points));
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let mut runs: Vec<PoolRun> = Vec::new();
    let mut base_secs = f64::NAN;
    for &w in &WORKER_COUNTS {
        let pool = WorkerPool::new(
            0,
            PoolConfig {
                workers: w,
                ..PoolConfig::default()
            },
        );
        // Warm-up pass parks every worker on the queue before timing.
        let warm = pool.run_batch(
            Arc::clone(&model),
            Arc::clone(&points),
            BatchOutput::Moments,
            None,
            None,
        );
        assert!(
            warm.results.iter().all(Result::is_ok),
            "pool batch failed at {w} workers"
        );
        let secs = time_median(reps, || {
            let out = pool.run_batch(
                Arc::clone(&model),
                Arc::clone(&points),
                BatchOutput::Moments,
                None,
                None,
            );
            std::hint::black_box(out.results.len());
        });
        if w == 1 {
            base_secs = secs;
        }
        runs.push(PoolRun {
            workers: w,
            secs,
            points_per_sec: batch_points as f64 / secs,
            speedup_vs_1: base_secs / secs,
        });
    }
    PoolResult {
        batch_points,
        host_cpus,
        runs,
    }
}

fn json_report(
    points: usize,
    reps: usize,
    results: &[CaseResult],
    obs: &ObsResult,
    pool: &PoolResult,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"serve\",");
    let _ = writeln!(s, "  \"points\": {points},");
    let _ = writeln!(s, "  \"reps\": {reps},");
    s.push_str("  \"observability\": {\n");
    let _ = writeln!(s, "    \"batch_points\": {},", obs.batch_points);
    let _ = writeln!(
        s,
        "    \"observe_on_points_per_sec\": {:e},",
        obs.on_points_per_sec
    );
    let _ = writeln!(
        s,
        "    \"observe_off_points_per_sec\": {:e},",
        obs.off_points_per_sec
    );
    let _ = writeln!(s, "    \"overhead_pct\": {:.3},", obs.overhead_pct);
    s.push_str("    \"stages\": [\n");
    for (i, (stage, count, total_ns, mean_ns)) in obs.stages.iter().enumerate() {
        let comma = if i + 1 < obs.stages.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"stage\": \"{stage}\", \"count\": {count}, \"total_ns\": {total_ns}, \"mean_ns\": {mean_ns:.1}}}{comma}"
        );
    }
    s.push_str("    ],\n");
    s.push_str("    \"serialize_by_encoding\": [\n");
    for (i, (stage, count, total_ns, mean_ns)) in obs.serialize_by_encoding.iter().enumerate() {
        let comma = if i + 1 < obs.serialize_by_encoding.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "      {{\"stage\": \"{stage}\", \"count\": {count}, \"total_ns\": {total_ns}, \"mean_ns\": {mean_ns:.1}}}{comma}"
        );
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"pool\": {\n");
    let _ = writeln!(s, "    \"batch_points\": {},", pool.batch_points);
    let _ = writeln!(s, "    \"host_cpus\": {},", pool.host_cpus);
    s.push_str("    \"runs\": [\n");
    for (i, r) in pool.runs.iter().enumerate() {
        let comma = if i + 1 < pool.runs.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"workers\": {}, \"secs\": {:e}, \"points_per_sec\": {:e}, \"speedup_vs_1\": {:e}}}{comma}",
            r.workers, r.secs, r.points_per_sec, r.speedup_vs_1
        );
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let pps = points as f64 / r.single_secs;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"symbols\": {},", r.symbols);
        let _ = writeln!(s, "      \"order\": {},", r.order);
        let _ = writeln!(s, "      \"op_count\": {},", r.op_count);
        let _ = writeln!(s, "      \"single_point_secs\": {:e},", r.single_secs);
        let _ = writeln!(s, "      \"single_points_per_sec\": {pps:e},");
        s.push_str("      \"batch\": [\n");
        for (j, &(w, secs)) in r.batch.iter().enumerate() {
            let comma = if j + 1 < r.batch.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"workers\": {w}, \"secs\": {secs:e}, \"points_per_sec\": {:e}, \"speedup_vs_serial\": {:e}}}{comma}",
                points as f64 / secs,
                r.single_secs / secs,
            );
        }
        s.push_str("      ]\n");
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Median of 15 reps: each timed pass is sub-millisecond, so reps are
    // nearly free next to the workload compiles, and the wider median
    // keeps the bench_gate comparison stable across runs.
    let mut points = 2000usize;
    let mut reps = 15usize;
    let mut segments = 200usize;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let val = |it: &mut std::slice::Iter<String>, flag: &str| {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a positive integer"))
        };
        match a.as_str() {
            "--points" => points = val(&mut it, "--points"),
            "--reps" => reps = val(&mut it, "--reps"),
            "--segments" => segments = val(&mut it, "--segments"),
            "--out" => {
                out_path = Some(
                    it.next()
                        .unwrap_or_else(|| panic!("--out needs a path"))
                        .clone(),
                )
            }
            other => panic!("unknown argument '{other}'"),
        }
    }

    println!("compiling workloads…");
    let opamp = opamp_workload(2).expect("op-amp workload");
    let obs = run_obs_overhead(opamp.model.clone(), reps);
    println!(
        "observability: 1000-pt batch via handle_line — {:.0} pts/s observed, {:.0} pts/s bare ({:+.2}% overhead)",
        obs.on_points_per_sec, obs.off_points_per_sec, obs.overhead_pct
    );
    for (stage, count, _total, mean_ns) in &obs.stages {
        println!("  stage {stage:<10} count {count:>4}  mean {mean_ns:>12.0} ns");
    }
    for (stage, count, _total, mean_ns) in &obs.serialize_by_encoding {
        println!("  encoding {stage:<18} count {count:>4}  mean {mean_ns:>12.0} ns");
    }
    let pool = run_pool_scaling(&opamp.model, reps);
    println!(
        "pool: {}-pt batch, host_cpus={}",
        pool.batch_points, pool.host_cpus
    );
    for r in &pool.runs {
        println!(
            "  workers {:>2}  {:>12.0} pts/s  {:>6.2}x vs 1 worker",
            r.workers, r.points_per_sec, r.speedup_vs_1
        );
    }
    let lines = lines_workload(segments).expect("lines workload");
    let cases = [
        Case {
            name: "opamp741_order2".into(),
            points: make_points(&opamp.model, points),
            model: opamp.model,
        },
        Case {
            name: format!("coupled_lines_{segments}seg_direct"),
            points: make_points(&lines.direct, points),
            model: lines.direct,
        },
        Case {
            name: format!("coupled_lines_{segments}seg_crosstalk"),
            points: make_points(&lines.crosstalk, points),
            model: lines.crosstalk,
        },
    ];

    let results: Vec<CaseResult> = cases.iter().map(|c| run_case(c, reps)).collect();

    println!(
        "\n{:<34} {:>8} {:>12} {:>10}",
        "case", "workers", "points/s", "speedup"
    );
    for r in &results {
        let serial_pps = points as f64 / r.single_secs;
        println!(
            "{:<34} {:>8} {serial_pps:>12.0} {:>10}",
            r.name, "serial", "1.00x"
        );
        for &(w, secs) in &r.batch {
            println!(
                "{:<34} {w:>8} {:>12.0} {:>9.2}x",
                "",
                points as f64 / secs,
                r.single_secs / secs
            );
        }
    }

    let out = out_path.map_or_else(
        || Path::new("results").join("BENCH_serve.json"),
        std::path::PathBuf::from,
    );
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&out, json_report(points, reps, &results, &obs, &pool)).expect("write report");
    println!("\nwrote {}", out.display());
}
