//! Shared harness for the paper-reproduction experiments and benchmarks.
//!
//! Everything the `paper` binary and the criterion benches need: the two
//! evaluation workloads compiled exactly as in the paper (§3.1 linearized
//! 741 with symbols `g_out,Q14` and `Ccomp`; §3.2 coupled RC lines with
//! symbols `Rdrv` and `Cload`), parameter grids, timing helpers, and CSV
//! output.

#![forbid(unsafe_code)]

use awesymbolic::prelude::*;
use awesymbolic::PartitionError;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// The §3.1 workload: compiled second-order symbolic model of the 741.
pub struct OpAmpWorkload {
    /// The circuit (172 linear elements).
    pub circuit: Circuit,
    /// Driving source.
    pub input: ElementId,
    /// Output node.
    pub output: Node,
    /// `ro_q14` id (value = 1/g_out,Q14).
    pub ro_q14: ElementId,
    /// `c_comp` id.
    pub c_comp: ElementId,
    /// Compiled model over `[g_out_q14, c_comp]`.
    pub model: CompiledModel,
    /// Time spent compiling the model.
    pub compile_time: std::time::Duration,
}

/// Builds the op-amp workload at the given order.
///
/// # Errors
///
/// Propagates compilation failures.
pub fn opamp_workload(order: usize) -> Result<OpAmpWorkload, PartitionError> {
    let amp = generators::opamp741();
    let t0 = Instant::now();
    let model = SymbolicAwe::new(&amp.circuit, amp.input, amp.output)
        .order(order)
        .symbol_named("g_out_q14", "ro_q14", SymbolRole::Conductance)?
        .symbol_named("c_comp", "c_comp", SymbolRole::Capacitance)?
        .compile()?;
    let compile_time = t0.elapsed();
    Ok(OpAmpWorkload {
        circuit: amp.circuit,
        input: amp.input,
        output: amp.output,
        ro_q14: amp.ro_q14,
        c_comp: amp.c_comp,
        model,
        compile_time,
    })
}

/// The §3.2 workload: compiled models for both outputs of the coupled
/// lines.
pub struct LinesWorkload {
    /// The circuit (5005 elements at 1000 segments).
    pub circuit: Circuit,
    /// Line specification used.
    pub spec: generators::CoupledLineSpec,
    /// Driving source.
    pub input: ElementId,
    /// Driver resistor ids.
    pub rdrv: [ElementId; 2],
    /// Load capacitor ids.
    pub cload: [ElementId; 2],
    /// First-order direct-transmission model over `[rdrv, cload]`.
    pub direct: CompiledModel,
    /// Second-order cross-talk model over `[rdrv, cload]`.
    pub crosstalk: CompiledModel,
    /// Victim-line output node.
    pub victim_out: Node,
    /// Aggressor-line output node.
    pub aggressor_out: Node,
    /// Time spent compiling both models.
    pub compile_time: std::time::Duration,
}

/// Builds the coupled-line workload with the given segment count (the
/// paper uses 1000).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn lines_workload(segments: usize) -> Result<LinesWorkload, PartitionError> {
    let spec = generators::CoupledLineSpec {
        segments,
        ..Default::default()
    };
    let lines = generators::coupled_lines(&spec);
    let t0 = Instant::now();
    let direct = SymbolicAwe::new(&lines.circuit, lines.input, lines.aggressor_out)
        .order(1)
        .symbol(SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()))
        .symbol(SymbolBinding::capacitance("cload", lines.cload.to_vec()))
        .compile()?;
    let crosstalk = SymbolicAwe::new(&lines.circuit, lines.input, lines.victim_out)
        .order(2)
        .symbol(SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()))
        .symbol(SymbolBinding::capacitance("cload", lines.cload.to_vec()))
        .compile()?;
    let compile_time = t0.elapsed();
    Ok(LinesWorkload {
        circuit: lines.circuit,
        spec,
        input: lines.input,
        rdrv: lines.rdrv,
        cload: lines.cload,
        direct,
        crosstalk,
        victim_out: lines.victim_out,
        aggressor_out: lines.aggressor_out,
        compile_time,
    })
}

/// A logarithmic grid of `n` points spanning `center/span .. center·span`.
pub fn log_grid(center: f64, span: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "grid needs at least two points");
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            center / span * (span * span).powf(t)
        })
        .collect()
}

/// Times one full (non-partitioned) AWE moment analysis of a circuit with
/// updated element values: re-stamp, factor, recurse — the per-datapoint
/// cost column of Table 1.
///
/// # Panics
///
/// Panics when the analysis fails (the harness circuits are well posed).
pub fn full_awe_moments(
    circuit: &Circuit,
    edits: &[(ElementId, f64)],
    input: ElementId,
    output: Node,
    count: usize,
) -> Vec<f64> {
    let mut c2 = circuit.clone();
    for &(id, v) in edits {
        c2.set_value(id, v);
    }
    let awe = AweAnalysis::new(&c2, input, output).expect("awe analysis");
    awe.moments(count).expect("moments").m
}

/// Median-of-runs wall-clock timer.
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Writes a surface `z(x, y)` as CSV (`x,y,z` rows).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_surface_csv(
    path: &Path,
    header: &str,
    xs: &[f64],
    ys: &[f64],
    mut z: impl FnMut(f64, f64) -> f64,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for &x in xs {
        for &y in ys {
            writeln!(f, "{x:e},{y:e},{:e}", z(x, y))?;
        }
    }
    Ok(())
}

/// Writes line series (`t, series1, series2, …`) as CSV.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_series_csv(
    path: &Path,
    header: &str,
    ts: &[f64],
    series: &[Vec<f64>],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for (i, &t) in ts.iter().enumerate() {
        write!(f, "{t:e}")?;
        for s in series {
            write!(f, ",{:e}", s[i])?;
        }
        writeln!(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_grid_shape() {
        let g = log_grid(1.0, 10.0, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[4] - 10.0).abs() < 1e-12);
        assert!((g[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opamp_workload_builds() {
        let w = opamp_workload(2).unwrap();
        assert_eq!(w.model.symbols().len(), 2);
        let m = w.model.eval_moments(w.model.nominal());
        assert!(m[0].abs() > 1e3);
    }

    #[test]
    fn lines_workload_builds_small() {
        let w = lines_workload(50).unwrap();
        assert_eq!(w.direct.order(), 1);
        assert_eq!(w.crosstalk.order(), 2);
        let vals = [w.spec.rdrv, w.spec.cload];
        assert!((w.direct.dc_gain(&vals) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timer_returns_positive() {
        let t = time_median(3, || (0..1000).sum::<u64>());
        assert!(t >= 0.0);
    }

    #[test]
    fn csv_writers_produce_files() {
        let dir = std::env::temp_dir().join("awesym_bench_test");
        let p1 = dir.join("surface.csv");
        write_surface_csv(&p1, "x,y,z", &[1.0, 2.0], &[3.0], |x, y| x + y).unwrap();
        let text = std::fs::read_to_string(&p1).unwrap();
        assert!(text.lines().count() == 3);
        let p2 = dir.join("series.csv");
        write_series_csv(&p2, "t,a", &[0.0, 1.0], &[vec![5.0, 6.0]]).unwrap();
        let text = std::fs::read_to_string(&p2).unwrap();
        assert!(text.contains("1e0,6e0"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
