//! Substrate benchmarks: sparse LU, moment recursion, Padé, and the tape
//! evaluator — the building blocks whose costs explain the headline
//! numbers.

use awesym_awe::{pade_rom, MomentEngine};
use awesym_circuit::generators::rc_ladder;
use awesym_mna::Mna;
use awesym_sparse::{LuOptions, SparseLu};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sparse_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_lu_factor");
    for n in [100usize, 1000, 4000] {
        let w = rc_ladder(n, 10.0, 1e-12);
        let mna = Mna::build(&w.circuit).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(SparseLu::factor(mna.g(), LuOptions::default()).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sparse_lu_solve");
    for n in [1000usize, 4000] {
        let w = rc_ladder(n, 10.0, 1e-12);
        let mna = Mna::build(&w.circuit).unwrap();
        let lu = SparseLu::factor(mna.g(), LuOptions::default()).unwrap();
        let rhs = vec![1.0; mna.dim()];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(lu.solve(black_box(&rhs))))
        });
    }
    group.finish();
}

fn bench_moments(c: &mut Criterion) {
    let mut group = c.benchmark_group("moment_recursion_8_moments");
    for n in [200usize, 1000, 4000] {
        let w = rc_ladder(n, 10.0, 1e-12);
        let mna = Mna::build(&w.circuit).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let eng = MomentEngine::new(mna.clone(), w.input, w.output).unwrap();
                black_box(eng.compute(8).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_pade(c: &mut Criterion) {
    // Moments of a realistic 4-pole response.
    let poles = [-1e6, -2e7, -3e8, -4e9];
    let res = [1e6, -1e7, 2e8, -1e9];
    let moments: Vec<f64> = (0..8)
        .map(|j| {
            -poles
                .iter()
                .zip(res.iter())
                .map(|(&p, &k): (&f64, &f64)| k / p.powi(j + 1))
                .sum::<f64>()
        })
        .collect();
    let mut group = c.benchmark_group("pade");
    for q in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| black_box(pade_rom(black_box(&moments[..2 * q]), q, true).unwrap()))
        });
    }
    group.finish();
}

fn bench_tape(c: &mut Criterion) {
    let w = awesym_bench::opamp_workload(2).unwrap();
    let g0 = w.model.nominal()[0];
    let c0 = w.model.nominal()[1];
    let ev = w.model.evaluator();
    let mut out = vec![0.0; ev.n_outputs()];
    c.bench_function("tape_eval_opamp", |b| {
        b.iter(|| {
            ev.eval_into(black_box(&[g0, c0]), &mut out);
            black_box(out[0])
        })
    });
}

criterion_group!(
    benches,
    bench_sparse_lu,
    bench_moments,
    bench_pade,
    bench_tape
);
criterion_main!(benches);
