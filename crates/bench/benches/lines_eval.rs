//! §3.2 timings (criterion form): incremental evaluation of the coupled-
//! line cross-talk model vs a full AWE re-analysis of the 1000-segment
//! circuit, plus the one-time compile cost at several line lengths.

use awesym_bench::{full_awe_moments, lines_workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lines(c: &mut Criterion) {
    let w = lines_workload(1000).expect("workload");
    let r0 = w.spec.rdrv;
    let c0 = w.spec.cload;
    let mut group = c.benchmark_group("lines_per_iteration");
    let ev = w.crosstalk.evaluator();
    let mut out = vec![0.0; ev.n_outputs()];
    group.bench_function("crosstalk_eval", |b| {
        b.iter(|| {
            ev.eval_into(black_box(&[r0 * 1.3, c0 * 0.7]), &mut out);
            black_box(out[1])
        })
    });
    group.sample_size(10);
    group.bench_function("full_awe_reanalysis", |b| {
        b.iter(|| {
            black_box(full_awe_moments(
                &w.circuit,
                &[(w.rdrv[0], r0 * 1.3), (w.rdrv[1], r0 * 1.3)],
                w.input,
                w.victim_out,
                4,
            ))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("lines_compile");
    group.sample_size(10);
    for segments in [100usize, 300, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(segments),
            &segments,
            |b, &segments| b.iter(|| black_box(lines_workload(segments).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lines);
criterion_main!(benches);
