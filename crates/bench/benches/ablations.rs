//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! - moment-level partitioning vs exact symbolic analysis (compile cost);
//! - full symbolic moments vs the derivative-based partial Padé;
//! - moment scaling on/off in the Padé step (robustness, measured as cost
//!   of the extra work);
//! - minimum-degree vs natural ordering in the sparse LU.

use awesym_circuit::generators::{fig1_rc, rc_ladder};
use awesym_mna::Mna;
use awesym_partition::{exact, CompiledModel, ModelOptions, SymbolBinding};
use awesym_sparse::{LuOptions, Ordering, SparseLu};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_partitioned_vs_exact(c: &mut Criterion) {
    // On a circuit small enough for the exact path, compare the cost of
    // compiling the partitioned model against deriving the exact symbolic
    // transfer function.
    let w = fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
    let ckt = w.circuit.clone();
    let bindings = [
        SymbolBinding::capacitance("c1", vec![ckt.find("C1").unwrap()]),
        SymbolBinding::capacitance("c2", vec![ckt.find("C2").unwrap()]),
    ];
    let mut group = c.benchmark_group("symbolic_analysis_cost");
    group.bench_function("partitioned_compile_order2", |b| {
        b.iter(|| black_box(CompiledModel::build(&ckt, w.input, w.output, &bindings, 2).unwrap()))
    });
    group.bench_function("exact_symbolic_transfer", |b| {
        b.iter(|| black_box(exact::exact_transfer(&ckt, w.input, w.output, &bindings).unwrap()))
    });
    group.finish();
}

fn bench_partial_pade(c: &mut Criterion) {
    let amp = awesym_circuit::generators::opamp741();
    let bindings = [
        SymbolBinding::conductance("g", vec![amp.ro_q14]),
        SymbolBinding::capacitance("c", vec![amp.c_comp]),
    ];
    let mut group = c.benchmark_group("partial_pade_compile");
    group.sample_size(20);
    for k_sym in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k_sym), &k_sym, |b, &k| {
            b.iter(|| {
                black_box(
                    CompiledModel::build_with_options(
                        &amp.circuit,
                        amp.input,
                        amp.output,
                        &bindings,
                        ModelOptions::order(2).with_symbolic_moments(k),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_pade_scaling(c: &mut Criterion) {
    let poles = [-1e4, -1e7, -1e10];
    let res = [1.0, 10.0, 100.0];
    let moments: Vec<f64> = (0..6)
        .map(|j| {
            -poles
                .iter()
                .zip(res.iter())
                .map(|(&p, &k): (&f64, &f64)| k / p.powi(j + 1))
                .sum::<f64>()
        })
        .collect();
    let mut group = c.benchmark_group("pade_moment_scaling");
    group.bench_function("scaled", |b| {
        b.iter(|| black_box(awesym_awe::pade_rom(black_box(&moments), 3, true)))
    });
    group.bench_function("unscaled", |b| {
        b.iter(|| black_box(awesym_awe::pade_rom(black_box(&moments), 3, false)))
    });
    group.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let w = rc_ladder(2000, 10.0, 1e-12);
    let mna = Mna::build(&w.circuit).unwrap();
    let mut group = c.benchmark_group("lu_ordering");
    group.sample_size(20);
    for (name, ord) in [
        ("min_degree", Ordering::MinDegree),
        ("natural", Ordering::Natural),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    SparseLu::factor(
                        mna.g(),
                        LuOptions {
                            ordering: ord,
                            ..Default::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_multi_output_sharing(c: &mut Criterion) {
    // One shared assembly for both coupled-line outputs vs two separate
    // builds: the shared path should approach half the cost.
    use awesym_circuit::generators::{coupled_lines, CoupledLineSpec};
    use awesym_mna::Probe;
    let spec = CoupledLineSpec {
        segments: 300,
        ..Default::default()
    };
    let lines = coupled_lines(&spec);
    let bindings = [
        SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()),
        SymbolBinding::capacitance("cload", lines.cload.to_vec()),
    ];
    let probes = [
        Probe::NodeVoltage(lines.aggressor_out),
        Probe::NodeVoltage(lines.victim_out),
    ];
    let mut group = c.benchmark_group("multi_output_compile");
    group.sample_size(10);
    group.bench_function("shared_two_outputs", |b| {
        b.iter(|| {
            black_box(
                CompiledModel::build_multi(
                    &lines.circuit,
                    lines.input,
                    &probes,
                    &bindings,
                    ModelOptions::order(2),
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("separate_two_builds", |b| {
        b.iter(|| {
            let a = CompiledModel::build(
                &lines.circuit,
                lines.input,
                lines.aggressor_out,
                &bindings,
                2,
            )
            .unwrap();
            let v =
                CompiledModel::build(&lines.circuit, lines.input, lines.victim_out, &bindings, 2)
                    .unwrap();
            black_box((a, v))
        })
    });
    group.finish();
}

fn bench_newton(c: &mut Criterion) {
    use awesym_circuit::{Circuit, Element};
    use awesym_nonlinear::{BjtParams, Device, NonlinearCircuit};
    // A chain of N common-emitter stages — Newton cost vs device count.
    let mut group = c.benchmark_group("newton_dc");
    group.sample_size(20);
    for n in [2usize, 8, 32] {
        let mut lin = Circuit::new();
        let vcc = lin.node("vcc");
        lin.add(Element::vsource("VCC", vcc, Circuit::GROUND, 10.0));
        let vb = lin.node("vb");
        lin.add(Element::vsource("VB", vb, Circuit::GROUND, 1.0));
        let mut ckt_devices = Vec::new();
        for i in 0..n {
            let b = lin.node(&format!("b{i}"));
            let col = lin.node(&format!("c{i}"));
            let e = lin.node(&format!("e{i}"));
            lin.add(Element::resistor(&format!("rb{i}"), vb, b, 100.0));
            lin.add(Element::resistor(&format!("rc{i}"), vcc, col, 2e3));
            lin.add(Element::resistor(
                &format!("re{i}"),
                e,
                Circuit::GROUND,
                330.0,
            ));
            ckt_devices.push((format!("q{i}"), b, col, e));
        }
        let mut ckt = NonlinearCircuit::new(lin);
        for (name, b, col, e) in ckt_devices {
            ckt.add(Device::npn(&name, b, col, e, BjtParams::default()));
        }
        group.bench_with_input(criterion::BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(ckt.dc_operating_point().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioned_vs_exact,
    bench_partial_pade,
    bench_pade_scaling,
    bench_ordering,
    bench_multi_output_sharing,
    bench_newton
);
criterion_main!(benches);
