//! Table 1 (criterion form): per-iteration cost of one model evaluation,
//! compiled AWEsymbolic vs a full AWE re-analysis, on the linearized 741.

use awesym_bench::{full_awe_moments, opamp_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let w = opamp_workload(2).expect("workload");
    let g0 = w.model.nominal()[0];
    let c0 = w.model.nominal()[1];
    let mut group = c.benchmark_group("table1_per_iteration");

    let ev = w.model.evaluator();
    let mut out = vec![0.0; ev.n_outputs()];
    group.bench_function("awesymbolic_eval", |b| {
        b.iter(|| {
            ev.eval_into(black_box(&[g0 * 1.1, c0 * 0.9]), &mut out);
            black_box(out[0])
        })
    });
    group.bench_function("awesymbolic_eval_plus_pade", |b| {
        b.iter(|| black_box(w.model.rom(black_box(&[g0 * 1.1, c0 * 0.9])).unwrap()))
    });
    group.sample_size(20);
    group.bench_function("full_awe_reanalysis", |b| {
        b.iter(|| {
            black_box(full_awe_moments(
                &w.circuit,
                &[(w.ro_q14, 1.0 / (g0 * 1.1)), (w.c_comp, c0 * 0.9)],
                w.input,
                w.output,
                4,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
