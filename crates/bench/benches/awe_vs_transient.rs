//! The §1 claim: AWE is more than an order of magnitude faster than
//! SPICE-class (implicit transient) simulation for this class of problem.

use awesym_awe::AweAnalysis;
use awesym_circuit::generators::rc_ladder;
use awesym_mna::{transient, IntegrationMethod, Mna, TransientOptions, Waveform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_awe_vs_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("awe_vs_transient");
    group.sample_size(10);
    for n in [200usize, 1000] {
        let w = rc_ladder(n, 10.0, 0.1e-12);
        let mna = Mna::build(&w.circuit).unwrap();
        // Pre-compute the horizon from a throwaway ROM so both methods
        // cover the same time span.
        let tau = {
            let a = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
            1.0 / a.rom_stable(3).unwrap().dominant_pole().unwrap().abs()
        };
        group.bench_with_input(BenchmarkId::new("awe_rom", n), &n, |b, _| {
            b.iter(|| {
                let a = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
                black_box(a.rom_stable(3).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("trapezoidal", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    transient(
                        &mna,
                        w.input,
                        &Waveform::Step { amplitude: 1.0 },
                        &TransientOptions {
                            t_stop: 5.0 * tau,
                            dt: tau / 200.0,
                            method: IntegrationMethod::Trapezoidal,
                        },
                        &[w.output],
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_awe_vs_transient);
criterion_main!(benches);
