//! Quickstart: the paper's Fig. 1 RC circuit.
//!
//! Reproduces eq. (5) (full symbolic transfer function) and eq. (6)
//! (mixed numeric-symbolic form), then compiles an AWEsymbolic model and
//! shows that evaluating it anywhere in the symbol space matches a fresh
//! full analysis.
//!
//! Run with: `cargo run --example quickstart`

use awesymbolic::prelude::*;
use awesymbolic::{exact, PartitionError};

fn main() -> Result<(), PartitionError> {
    // Fig. 1: vin —R1— n1 —R2— n2, C1 at n1, C2 at n2, output v(n2).
    let w = generators::fig1_rc(1e-3, 1e-3, 1e-9, 1e-9);
    let c = &w.circuit;

    println!("== Exact symbolic analysis (paper eq. 5) ==");
    let bindings = [
        SymbolBinding::conductance("G1", vec![c.find("R1").unwrap()]),
        SymbolBinding::conductance("G2", vec![c.find("R2").unwrap()]),
        SymbolBinding::capacitance("C1", vec![c.find("C1").unwrap()]),
        SymbolBinding::capacitance("C2", vec![c.find("C2").unwrap()]),
    ];
    let h = exact::exact_transfer(c, w.input, w.output, &bindings)?;
    let num_c = h.coeffs_in_s(&h.num);
    let den_c = h.coeffs_in_s(&h.den);
    let elem_syms = {
        // Element symbols only (drop the trailing `s`).
        let mut s = awesymbolic::SymbolSet::new();
        for name in ["G1", "G2", "C1", "C2"] {
            s.intern(name);
        }
        s
    };
    println!("H(s) numerator:");
    for (k, p) in num_c.iter().enumerate() {
        println!("  s^{k}: {}", p.display(&elem_syms));
    }
    println!("H(s) denominator:");
    for (k, p) in den_c.iter().enumerate() {
        println!("  s^{k}: {}", p.display(&elem_syms));
    }

    println!("\n== Compiled AWEsymbolic model (C1, R2 symbolic) ==");
    let model = SymbolicAwe::new(c, w.input, w.output)
        .order(2)
        .symbol_named("c1", "C1", SymbolRole::Capacitance)?
        .symbol_named("r2", "R2", SymbolRole::Resistance)?
        .compile()?;
    println!(
        "compiled: {} symbols, order {}, {} tape ops",
        model.symbols().len(),
        model.order(),
        model.op_count()
    );
    println!(
        "DC gain  : {}",
        model.forms().dc_gain().display(model.symbols())
    );
    println!(
        "1st-order pole: {}",
        model.forms().first_order_pole().display(model.symbols())
    );

    println!("\nEvaluating the compiled model across the symbol space:");
    println!(
        "{:>12} {:>12} {:>16} {:>16}",
        "C1 (F)", "R2 (Ω)", "pole 1 (rad/s)", "pole 2 (rad/s)"
    );
    for c1 in [0.5e-9, 1e-9, 2e-9] {
        for r2 in [500.0, 1e3, 2e3] {
            let rom = model.rom(&[c1, r2])?;
            let mut poles: Vec<f64> = rom.poles().iter().map(|p| p.re).collect();
            poles.sort_by(f64::total_cmp);
            println!(
                "{c1:>12.2e} {r2:>12.0} {:>16.4e} {:>16.4e}",
                poles[1], poles[0]
            );
        }
    }
    Ok(())
}
