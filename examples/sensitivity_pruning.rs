//! Automatic symbol selection with AWEsensitivity (§2.3 of the paper):
//! rank every element by normalized pole sensitivity, print the top
//! candidates, and compile a model over the two most significant ones.
//!
//! Run with: `cargo run --release --example sensitivity_pruning`

use awesymbolic::prelude::*;
use awesymbolic::{rank_symbol_candidates, PartitionError};

fn main() -> Result<(), PartitionError> {
    let amp = generators::opamp741();
    let c = &amp.circuit;

    println!(
        "AWEsensitivity ranking of the linearized 741 ({} elements):",
        c.num_elements()
    );
    let ranked = rank_symbol_candidates(c, amp.input, amp.output, 2)?;
    println!("{:>4} {:>12} {:>14}", "#", "element", "norm. |S|");
    for (i, (id, score)) in ranked.iter().take(12).enumerate() {
        println!("{:>4} {:>12} {:>14.4e}", i + 1, c.element(*id).name, score);
    }

    println!("\nCompiling a model over the top-2 auto-selected symbols…");
    let model = SymbolicAwe::new(c, amp.input, amp.output)
        .order(2)
        .auto_symbols(2)?
        .compile()?;
    let names: Vec<&str> = model.symbols().iter().collect();
    println!("selected symbols: {names:?}");
    println!("nominal values  : {:?}", model.nominal());

    let rom = model.rom(model.nominal())?;
    println!(
        "at nominal: A0 = {:.1} dB, p1 = {:.3e} Hz, stable = {}",
        20.0 * rom.dc_gain().abs().log10(),
        rom.dominant_pole().map_or(0.0, |p| p.abs()) / (2.0 * std::f64::consts::PI),
        rom.is_stable()
    );

    // Validate the selection away from nominal, as §2.3 recommends: the
    // compiled model must track a full re-analysis.
    let vals: Vec<f64> = model.nominal().iter().map(|v| v * 1.7).collect();
    let m = model.eval_moments(&vals);
    println!("moments at 1.7x nominal: {m:?}");
    Ok(())
}
