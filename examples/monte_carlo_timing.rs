//! Monte-Carlo interconnect timing — the "highly iterative application"
//! the paper's conclusion motivates. Process variation is modeled as
//! log-normal spread on the driver resistance and load capacitance; the
//! compiled symbolic model turns each sample into a microsecond evaluation
//! instead of a full circuit analysis.
//!
//! This version streams the study through `awesym-timing`'s Monte Carlo
//! engine: samples come from the counter-based [`BlockRng`] (the shared
//! seeded-distribution helper that replaced this example's hand-rolled
//! Box–Muller), blocks run through the SoA batch evaluator, and the
//! statistics below are read from the online accumulators — no per-sample
//! vector is ever materialized, and the numbers are bit-identical at any
//! worker count.
//!
//! Run with: `cargo run --release --example monte_carlo_timing`

use awesym_timing::{BlockSpec, BlockWorker, McTask};
use awesymbolic::prelude::*;
use awesymbolic::{delay_estimates, BlockRng, McConfig, McEngine, QuantileGrid};
use std::sync::Arc;
use std::time::Instant;

/// The study: a compiled coupled-line model sampled over log-normal
/// `(rdrv, cload)` spread. Implements [`McTask`] so the streaming engine
/// can drive it — the trait is not specific to gate chains.
struct LineStudy {
    model: CompiledModel,
    rdrv: f64,
    cload: f64,
}

struct LineWorker<'a> {
    study: &'a LineStudy,
    eval: awesymbolic::Evaluator<'a>,
    points: Vec<Vec<f64>>,
    moments: Vec<f64>,
}

impl BlockWorker for LineWorker<'_> {
    fn run_block(&mut self, block: BlockSpec, out: &mut Vec<f64>) {
        let mut rng = BlockRng::new(block.seed, block.index);
        self.points.resize_with(block.count, || vec![0.0; 2]);
        for p in &mut self.points[..block.count] {
            p[0] = self.study.rdrv * rng.log_normal(0.20);
            p[1] = self.study.cload * rng.log_normal(0.30);
        }
        let n_out = self.eval.n_outputs();
        self.moments.resize(block.count * n_out, 0.0);
        self.eval
            .eval_batch(&self.points[..block.count], &mut self.moments);
        out.clear();
        out.extend(self.moments.chunks_exact(n_out).map(|m| {
            delay_estimates(m)
                .ok()
                .and_then(|d| d.two_pole)
                .unwrap_or(f64::NAN)
        }));
    }
}

impl McTask for LineStudy {
    type Worker<'a> = LineWorker<'a>;
    fn make_worker(&self) -> LineWorker<'_> {
        LineWorker {
            study: self,
            eval: self.model.evaluator(),
            points: Vec::new(),
            moments: Vec::new(),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = generators::CoupledLineSpec {
        segments: 500,
        ..Default::default()
    };
    let lines = generators::coupled_lines(&spec);
    let c = &lines.circuit;
    println!(
        "coupled lines: {} elements; symbols rdrv (σ=20%), cload (σ=30%)",
        c.num_elements()
    );

    let t0 = Instant::now();
    let model = SymbolicAwe::new(c, lines.input, lines.aggressor_out)
        .order(2)
        .symbol(SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()))
        .symbol(SymbolBinding::capacitance("cload", lines.cload.to_vec()))
        .compile()?;
    println!("compiled in {:.3} s\n", t0.elapsed().as_secs_f64());

    // Nominal delay centers the quantile grid.
    let nominal = delay_estimates(&model.eval_moments(&[spec.rdrv, spec.cload]))?
        .two_pole
        .expect("nominal two-pole delay");

    let study = LineStudy {
        model,
        rdrv: spec.rdrv,
        cload: spec.cload,
    };
    let n = 10_000u64;
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get().min(8));
    let registry = awesym_obs::Registry::new();
    let engine = McEngine::new(Arc::new(study), workers, &registry);
    let report = engine.run(&McConfig::new(
        n,
        0xAE5E,
        QuantileGrid::around(nominal, 64.0, QuantileGrid::DEFAULT_BINS),
    ));

    let s = &report.summary;
    println!(
        "{} samples in {:.3} s ({:.0} samples/s, {} workers, {} blocks)",
        s.samples, report.wall_secs, report.samples_per_sec, report.workers, s.blocks
    );
    println!("50% delay distribution (online accumulators):");
    println!("  mean   = {:.4e} s", s.mean);
    println!("  std    = {:.4e} s", s.std_dev);
    println!("  median = {:.4e} s", s.p50.unwrap());
    println!("  p95    = {:.4e} s", s.p95.unwrap());
    println!("  p99.7  = {:.4e} s", s.p997.unwrap());
    if s.invalid > 0 {
        println!("  ({} samples had no stable two-pole fit)", s.invalid);
    }

    // Cost of the same study with per-sample full AWE, extrapolated from a
    // few runs.
    let t0 = Instant::now();
    let reps = 5;
    for i in 0..reps {
        let mut c2 = c.clone();
        let f = 0.8 + 0.1 * i as f64;
        for id in lines.rdrv {
            c2.set_value(id, spec.rdrv * f);
        }
        let awe = AweAnalysis::new(&c2, lines.input, lines.aggressor_out)?;
        let _ = awe.rom_stable(2)?;
    }
    let per_full = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "\nfull-AWE Monte-Carlo would cost ≈ {:.1} s for {n} samples ({:.0}x more)",
        per_full * n as f64,
        per_full * n as f64 / report.wall_secs
    );
    Ok(())
}
