//! Monte-Carlo interconnect timing — the "highly iterative application"
//! the paper's conclusion motivates. Process variation is modeled as
//! log-normal spread on the driver resistance and load capacitance; the
//! compiled symbolic model turns each sample into a microsecond evaluation
//! instead of a full circuit analysis, so a 10 000-sample delay
//! distribution costs less than a handful of traditional analyses.
//!
//! Run with: `cargo run --release --example monte_carlo_timing`

use awesymbolic::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = generators::CoupledLineSpec {
        segments: 500,
        ..Default::default()
    };
    let lines = generators::coupled_lines(&spec);
    let c = &lines.circuit;
    println!(
        "coupled lines: {} elements; symbols rdrv (σ=20%), cload (σ=30%)",
        c.num_elements()
    );

    let t0 = Instant::now();
    let model = SymbolicAwe::new(c, lines.input, lines.aggressor_out)
        .order(2)
        .symbol(SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()))
        .symbol(SymbolBinding::capacitance("cload", lines.cload.to_vec()))
        .compile()?;
    println!("compiled in {:.3} s\n", t0.elapsed().as_secs_f64());

    let mut rng = StdRng::seed_from_u64(0xAE5E);
    let n = 10_000;
    let mut delays = Vec::with_capacity(n);
    let lognormal = |rng: &mut StdRng, sigma: f64| -> f64 {
        // Box-Muller from two uniforms; exp for log-normal.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (sigma * z).exp()
    };
    let t0 = Instant::now();
    for _ in 0..n {
        let r = spec.rdrv * lognormal(&mut rng, 0.20);
        let cl = spec.cload * lognormal(&mut rng, 0.30);
        if let Ok(rom) = model.rom(&[r, cl]) {
            if let Some(d) = rom.delay_50() {
                delays.push(d);
            }
        }
    }
    let mc_time = t0.elapsed().as_secs_f64();
    delays.sort_by(f64::total_cmp);
    let pct = |p: f64| delays[((delays.len() - 1) as f64 * p) as usize];
    let mean: f64 = delays.iter().sum::<f64>() / delays.len() as f64;
    println!(
        "{} samples in {:.3} s ({:.1} µs/sample)",
        delays.len(),
        mc_time,
        mc_time / n as f64 * 1e6
    );
    println!("50% delay distribution:");
    println!("  mean   = {:.4e} s", mean);
    println!("  p5     = {:.4e} s", pct(0.05));
    println!("  median = {:.4e} s", pct(0.50));
    println!("  p95    = {:.4e} s", pct(0.95));
    println!("  p99.9  = {:.4e} s", pct(0.999));

    // Cost of the same study with per-sample full AWE, extrapolated from a
    // few runs.
    let t0 = Instant::now();
    let reps = 5;
    for i in 0..reps {
        let mut c2 = c.clone();
        let f = 0.8 + 0.1 * i as f64;
        for id in lines.rdrv {
            c2.set_value(id, spec.rdrv * f);
        }
        let awe = AweAnalysis::new(&c2, lines.input, lines.aggressor_out)?;
        let _ = awe.rom_stable(2)?;
    }
    let per_full = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "\nfull-AWE Monte-Carlo would cost ≈ {:.1} s for {n} samples ({:.0}x more)",
        per_full * n as f64,
        per_full * n as f64 / mc_time
    );
    Ok(())
}
