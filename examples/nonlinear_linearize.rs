//! The full "linear(ized)" pipeline: a *nonlinear* transistor amplifier is
//! biased with the Newton solver, linearized at its operating point, and
//! then compiled into an AWEsymbolic model — the same flow the paper
//! applies to the 741.
//!
//! Run with: `cargo run --release --example nonlinear_linearize`

use awesymbolic::prelude::*;
use awesymbolic::{BjtParams, Device, NonlinearCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-stage NPN amplifier with Miller compensation, at transistor
    // level with real exponential devices.
    let mut lin = Circuit::new();
    let vin = lin.node("vin");
    let vcc = lin.node("vcc");
    let b1 = lin.node("b1");
    let c1 = lin.node("c1");
    let e1 = lin.node("e1");
    let c2 = lin.node("c2");
    let e2 = lin.node("e2");
    lin.add(Element::vsource("VIN", vin, Circuit::GROUND, 0.9));
    lin.add(Element::vsource("VCC", vcc, Circuit::GROUND, 10.0));
    lin.add(Element::resistor("RS", vin, b1, 1e3));
    lin.add(Element::resistor("RC1", vcc, c1, 15e3));
    lin.add(Element::resistor("RE1", e1, Circuit::GROUND, 250.0));
    lin.add(Element::resistor("RC2", vcc, c2, 2e3));
    lin.add(Element::resistor("RE2", e2, Circuit::GROUND, 1e3));
    // Miller capacitor across the second stage.
    lin.add(Element::capacitor("CMILLER", c1, c2, 10e-12));
    lin.add(Element::capacitor("CL", c2, Circuit::GROUND, 20e-12));

    let mut ckt = NonlinearCircuit::new(lin);
    ckt.add(Device::npn("Q1", b1, c1, e1, BjtParams::default()));
    ckt.add(Device::npn("Q2", c1, c2, e2, BjtParams::default()));

    println!("== Newton DC operating point ==");
    let op = ckt.dc_operating_point()?;
    println!("converged in {} iterations", op.iterations());
    for q in ["Q1", "Q2"] {
        if let Some(awesymbolic::DeviceBias::Bjt { ic, vbe, gm, .. }) = op.device_bias(q) {
            println!("  {q}: IC = {ic:.3e} A, VBE = {vbe:.3} V, gm = {gm:.3e} S");
        }
    }
    println!(
        "  v(c1) = {:.3} V, v(c2) = {:.3} V",
        op.voltage(c1),
        op.voltage(c2)
    );

    println!("\n== Linearize and compile a symbolic model ==");
    let small = ckt.linearize(&op);
    println!(
        "small-signal circuit: {} elements ({} storage)",
        small.num_elements(),
        small.num_storage_elements()
    );
    let input = small.find("VIN").expect("input source");
    let output = small.find_node("c2").expect("output node");
    let cm = small.find("CMILLER").expect("miller cap");
    let model = SymbolicAwe::new(&small, input, output)
        .order(2)
        .symbol(SymbolBinding::capacitance("c_miller", vec![cm]))
        .compile()?;

    println!("symbols: {}", model.symbols());
    println!(
        "{:>12} {:>12} {:>14} {:>14}",
        "Cmiller (F)", "gain (dB)", "p1 (Hz)", "fu (Hz)"
    );
    for scale in [0.25, 1.0, 4.0] {
        let vals = [10e-12 * scale];
        let rom = model.rom(&vals)?;
        println!(
            "{:>12.2e} {:>12.2} {:>14.4e} {:>14.4e}",
            vals[0],
            20.0 * rom.dc_gain().abs().log10(),
            rom.dominant_pole().map_or(0.0, |p| p.abs()) / (2.0 * std::f64::consts::PI),
            rom.unity_gain_omega().unwrap_or(f64::NAN) / (2.0 * std::f64::consts::PI),
        );
    }
    Ok(())
}
