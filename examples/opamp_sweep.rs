//! The paper's §3.1 workload: frequency-domain symbolic analysis of the
//! linearized 741 op-amp with symbols `g_out,Q14` and `Ccomp`.
//!
//! Compiles the AWEsymbolic model once, then sweeps both symbols over a
//! grid and prints the performance surfaces of Figures 4–7 (first pole,
//! DC gain, unity-gain frequency, phase margin), plus the per-iteration
//! cost comparison of Table 1.
//!
//! Run with: `cargo run --release --example opamp_sweep`

use awesymbolic::prelude::*;
use awesymbolic::PartitionError;
use std::time::Instant;

fn main() -> Result<(), PartitionError> {
    let amp = generators::opamp741();
    let c = &amp.circuit;
    println!(
        "741 linearized model: {} elements, {} energy-storage elements",
        c.num_elements(),
        c.num_storage_elements()
    );

    let t0 = Instant::now();
    let model = SymbolicAwe::new(c, amp.input, amp.output)
        .order(2)
        .symbol_named("g_out_q14", "ro_q14", SymbolRole::Conductance)?
        .symbol_named("c_comp", "c_comp", SymbolRole::Capacitance)?
        .compile()?;
    let t_compile = t0.elapsed();
    println!(
        "compiled in {:.1} ms ({} tape ops)\n",
        t_compile.as_secs_f64() * 1e3,
        model.op_count()
    );

    let g_nom = model.nominal()[0];
    let c_nom = model.nominal()[1];

    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "g_out (S)", "Ccomp (F)", "p1 (Hz)", "A0 (dB)", "fu (Hz)", "PM (deg)"
    );
    for gs in [0.25, 1.0, 4.0] {
        for cs in [0.25, 1.0, 4.0] {
            let vals = [g_nom * gs, c_nom * cs];
            let rom = model.rom(&vals)?;
            let p1 = rom.dominant_pole().map_or(0.0, |p| p.abs()) / (2.0 * std::f64::consts::PI);
            let a0 = 20.0 * rom.dc_gain().abs().log10();
            let fu = rom
                .unity_gain_omega()
                .map_or(0.0, |w| w / (2.0 * std::f64::consts::PI));
            let pm = rom.phase_margin_deg().unwrap_or(f64::NAN);
            println!(
                "{:>12.3e} {:>12.3e} {:>12.3e} {:>12.2} {:>12.3e} {:>10.1}",
                vals[0], vals[1], p1, a0, fu, pm
            );
        }
    }

    // Per-iteration cost: compiled evaluation vs full AWE re-analysis.
    println!("\nPer-iteration cost (paper reports ~330x on a DECstation):");
    let n = 200;
    let ev = model.evaluator();
    let mut out = vec![0.0; ev.n_outputs()];
    let t0 = Instant::now();
    for i in 0..n {
        let f = 0.5 + (i as f64) / n as f64;
        ev.eval_into(&[g_nom * f, c_nom * f], &mut out);
    }
    let t_sym = t0.elapsed().as_secs_f64() / n as f64;
    let t0 = Instant::now();
    let full_n = 20;
    for i in 0..full_n {
        let f = 0.5 + (i as f64) / full_n as f64;
        let mut c2 = c.clone();
        c2.set_value(amp.ro_q14, 1.0 / (g_nom * f));
        c2.set_value(amp.c_comp, c_nom * f);
        let awe = AweAnalysis::new(&c2, amp.input, amp.output).map_err(PartitionError::from)?;
        let _ = awe.moments(4).map_err(PartitionError::from)?;
    }
    let t_awe = t0.elapsed().as_secs_f64() / full_n as f64;
    println!("  AWEsymbolic eval : {:>10.3} µs / iteration", t_sym * 1e6);
    println!("  full AWE         : {:>10.3} µs / iteration", t_awe * 1e6);
    println!("  speedup          : {:>10.0}x", t_awe / t_sym);
    Ok(())
}
