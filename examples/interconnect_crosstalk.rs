//! The paper's §3.2 workload: a compiled timing model for two coupled RC
//! lines (Fig. 8), with the driver resistance and the load capacitance as
//! symbols. Second-order models capture the non-monotonic cross-talk; a
//! first-order model suffices for direct transmission.
//!
//! Run with: `cargo run --release --example interconnect_crosstalk`

use awesymbolic::prelude::*;
use awesymbolic::PartitionError;
use std::time::Instant;

fn main() -> Result<(), PartitionError> {
    let spec = generators::CoupledLineSpec {
        segments: 1000,
        ..Default::default()
    };
    let lines = generators::coupled_lines(&spec);
    let c = &lines.circuit;
    println!(
        "coupled lines: {} segments/line, {} elements, {} nodes",
        spec.segments,
        c.num_elements(),
        c.num_nodes()
    );

    // Both outputs share one assembly and one symbolic recursion
    // (`build_multi`); the paper's order split — first order suffices for
    // direct transmission, second order for the non-monotonic cross-talk —
    // is recovered by evaluating the direct model at reduced order.
    let t0 = Instant::now();
    let bindings = [
        SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()),
        SymbolBinding::capacitance("cload", lines.cload.to_vec()),
    ];
    let probes = [
        awesymbolic::Probe::NodeVoltage(lines.aggressor_out),
        awesymbolic::Probe::NodeVoltage(lines.victim_out),
    ];
    let mut models = awesymbolic::CompiledModel::build_multi(
        c,
        lines.input,
        &probes,
        &bindings,
        awesymbolic::ModelOptions::order(2),
    )?;
    let xtalk = models.pop().expect("victim model");
    let direct = models.pop().expect("aggressor model");
    println!(
        "compiled both models in {:.2} s (direct {} ops, crosstalk {} ops)\n",
        t0.elapsed().as_secs_f64(),
        direct.op_count(),
        xtalk.op_count()
    );

    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>14}",
        "Rdrv (Ω)", "Cload (F)", "50% delay (s)", "xtalk peak (V)", "peak time (s)"
    );
    for rs in [0.5, 1.0, 2.0, 4.0] {
        for cs in [0.5, 1.0, 4.0] {
            let vals = [spec.rdrv * rs, spec.cload * cs];
            let d = direct.rom(&vals)?.delay_50().unwrap_or(f64::NAN);
            let (tp, vp) = xtalk
                .rom(&vals)?
                .step_peak()
                .unwrap_or((f64::NAN, f64::NAN));
            println!(
                "{:>10.1} {:>10.2e} {:>14.4e} {:>14.4e} {:>14.4e}",
                vals[0], vals[1], d, vp, tp
            );
        }
    }

    // Per-iteration cost on this 5000-element circuit.
    let n = 100;
    let ev = xtalk.evaluator();
    let mut out = vec![0.0; ev.n_outputs()];
    let t0 = Instant::now();
    for i in 0..n {
        let f = 0.5 + (i as f64) / n as f64;
        ev.eval_into(&[spec.rdrv * f, spec.cload * f], &mut out);
    }
    let t_sym = t0.elapsed().as_secs_f64() / n as f64;
    let t0 = Instant::now();
    let mut c2 = c.clone();
    for id in lines.rdrv {
        c2.set_value(id, spec.rdrv * 1.3);
    }
    let awe = AweAnalysis::new(&c2, lines.input, lines.victim_out).map_err(PartitionError::from)?;
    let _ = awe.moments(4).map_err(PartitionError::from)?;
    let t_awe = t0.elapsed().as_secs_f64();
    println!(
        "\nincremental cost: compiled {:.2} µs vs full AWE {:.1} ms ({}x)",
        t_sym * 1e6,
        t_awe * 1e3,
        (t_awe / t_sym) as u64
    );
    Ok(())
}
