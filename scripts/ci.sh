#!/usr/bin/env bash
# Tier-1 CI gate: build, test, formatting, and lints for the whole
# workspace. Run from the repository root; fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> fault_suite (deterministic fault injection, fixed seeds)"
cargo test -p awesym-serve --features fault-injection -q

echo "==> tape optimizer smoke (op-count, agreement, and throughput gates)"
cargo run --release -p awesym-bench --bin tape_bench -- --smoke

echo "==> CI green"
