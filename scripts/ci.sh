#!/usr/bin/env bash
# Tier-1 CI gate: build, test, formatting, lints, docs, fault suite, and
# benchmark gates for the whole workspace. Run from the repository root;
# fails fast on the first error, reporting which step failed and how long
# each completed step took.
set -euo pipefail
cd "$(dirname "$0")/.."

CURRENT_STEP="(startup)"
trap 'echo "==> CI FAILED in step: ${CURRENT_STEP}" >&2' ERR

step() {
  CURRENT_STEP="$1"
  shift
  echo "==> ${CURRENT_STEP}"
  local t0 t1
  t0=$(date +%s)
  "$@"
  t1=$(date +%s)
  echo "    (${CURRENT_STEP}: $((t1 - t0))s)"
}

step "cargo build --release" cargo build --release

step "cargo test -q" cargo test -q

step "cargo fmt --check" cargo fmt --check

step "cargo clippy --workspace -- -D warnings" \
  cargo clippy --workspace -- -D warnings

step "cargo doc --no-deps (rustdoc warnings are errors)" \
  env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

step "fault_suite (deterministic fault injection, fixed seeds)" \
  cargo test -p awesym-serve --features fault-injection -q

# --out keeps the smoke run's report away from the committed baseline in
# results/, which only full bench runs may regenerate.
step "tape optimizer smoke (op-count, agreement, and throughput gates)" \
  cargo run --release -p awesym-bench --bin tape_bench -- --smoke \
  --out target/bench_smoke/BENCH_tape.json

step "bench regression gate (fresh runs vs results/ baselines)" \
  scripts/bench_gate.sh

echo "==> CI green"
