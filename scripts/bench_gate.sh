#!/usr/bin/env bash
# Benchmark regression gate: run tape_bench, serve_bench and timing_bench
# fresh (into target/bench_fresh/, never touching the committed
# baselines), then compare against results/BENCH_tape.json,
# results/BENCH_serve.json and results/BENCH_timing.json.
# Fails when any tracked throughput metric regresses by more than 15 %
# (override with BENCH_GATE_MAX_REGRESSION_PCT or the gate's
# --max-regression-pct flag).
#
# The fresh serve run uses fewer points/reps to keep CI wall-clock low;
# per-point throughput metrics are size-independent, which is what makes
# the comparison meaningful. The tape run must use the full workload —
# its case names encode the segment count, and the gate matches fresh
# cases to baseline cases by name.
set -euo pipefail
cd "$(dirname "$0")/.."

FRESH_DIR="target/bench_fresh"
mkdir -p "${FRESH_DIR}"

echo "==> bench_gate: fresh tape_bench"
cargo run --release -p awesym-bench --bin tape_bench -- \
  --out "${FRESH_DIR}/BENCH_tape.json"

echo "==> bench_gate: fresh serve_bench (reduced points)"
cargo run --release -p awesym-bench --bin serve_bench -- \
  --points 1000 --reps 15 --segments 200 --out "${FRESH_DIR}/BENCH_serve.json"

# Reduced samples for CI wall-clock; samples/s is size-independent. The
# fresh run also feeds the determinism flag and the core-count-aware
# worker-scaling check (see bench_gate.rs).
echo "==> bench_gate: fresh timing_bench (reduced samples)"
cargo run --release -p awesym-bench --bin timing_bench -- \
  --samples 2e5 --reps 7 --out "${FRESH_DIR}/BENCH_timing.json"

# Host-relative isolation envelope (p99/throughput ratios, bit-identity);
# checked structurally by the gate, never against a baseline. Needs the
# fault-injection feature, so it builds a separate bench profile.
echo "==> bench_gate: fresh chaos_bench (cross-shard isolation)"
cargo run --release -p awesym-bench --features fault-injection --bin chaos_bench -- \
  --out "${FRESH_DIR}/BENCH_chaos.json"

echo "==> bench_gate: compare vs results/ baselines"
cargo run --release -p awesym-bench --bin bench_gate -- \
  --fresh "${FRESH_DIR}" --baseline results
