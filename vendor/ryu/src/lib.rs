//! Offline stand-in for `ryu`: fast shortest-round-trip `f64` → decimal
//! formatting without allocating and without going through `core::fmt`.
//!
//! The real ryu crate implements the Ryū algorithm with large
//! precomputed tables. This stand-in implements **Grisu2** (Loitsch,
//! "Printing Floating-Point Numbers Quickly and Accurately with
//! Integers", PLDI 2010) with the boundary narrowing used by rapidjson:
//! after the cached-power multiplication the upper boundary is lowered
//! and the lower boundary raised by one unit, which makes every emitted
//! digit string parse back to the original bits under a correctly
//! rounded parser (Rust's `str::parse::<f64>` is correctly rounded).
//! Grisu2 output is *round-trip safe for every finite f64*; in a small
//! fraction of cases it emits one more digit than strictly necessary,
//! which is an accepted trade for needing no fallback path.
//!
//! Output shape matches Rust's `{:e}` formatting — `d[.ddd]e<exp>` with
//! no `+` on positive exponents (`1.5e-9`, `5e-1`, `0e0`, `-0e0`) — so
//! the produced text is always a valid JSON number and byte-compatible
//! with what the workspace previously produced via `format!("{v:e}")`.
//!
//! The cached powers of ten are generated at compile time by a `const
//! fn` using 127-bit fixed-point arithmetic (error ≲ 2⁻¹¹⁴ relative,
//! far below the half-ulp of the 64-bit significands Grisu needs), so
//! the crate carries no hand-transcribed magic tables.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

/// A 64-bit significand × 2^e floating-point value ("do-it-yourself
/// float"), the working representation of Grisu.
#[derive(Debug, Clone, Copy)]
struct DiyFp {
    f: u64,
    e: i32,
}

/// Significand bits of an `f64`.
const SIG_BITS: u32 = 52;
/// The implicit leading bit of a normal `f64` significand.
const HIDDEN_BIT: u64 = 1 << SIG_BITS;
/// Unbiased exponent of the least significant significand bit.
const MIN_EXP: i32 = -1075;

impl DiyFp {
    /// Decomposes a finite positive `f64` without normalizing.
    fn from_f64(v: f64) -> DiyFp {
        let bits = v.to_bits();
        let biased = ((bits >> SIG_BITS) & 0x7ff) as i32;
        let frac = bits & (HIDDEN_BIT - 1);
        if biased == 0 {
            // Subnormal: no hidden bit.
            DiyFp {
                f: frac,
                e: MIN_EXP + 1,
            }
        } else {
            DiyFp {
                f: frac | HIDDEN_BIT,
                e: biased + MIN_EXP,
            }
        }
    }

    /// Shifts the significand until bit 63 is set.
    fn normalize(self) -> DiyFp {
        let s = self.f.leading_zeros() as i32;
        DiyFp {
            f: self.f << s,
            e: self.e - s,
        }
    }

    /// Rounded-to-nearest 64×64→64 significand product;
    /// exponents add (plus 64 for the dropped low word).
    fn mul(self, rhs: DiyFp) -> DiyFp {
        let p = u128::from(self.f) * u128::from(rhs.f);
        let h = (p >> 64) as u64;
        let l = p as u64;
        DiyFp {
            f: h + (l >> 63),
            e: self.e + rhs.e + 64,
        }
    }
}

/// The normalized boundaries (m⁻, m⁺) of `v`: the midpoints to the
/// neighbouring representable doubles, both brought to m⁺'s exponent.
fn normalized_boundaries(v: DiyFp) -> (DiyFp, DiyFp) {
    let plus = DiyFp {
        f: (v.f << 1) + 1,
        e: v.e - 1,
    }
    .normalize();
    // The lower gap is half-sized when v sits exactly on a power of two
    // (the predecessor is one binade down), except at the very bottom.
    let minus = if v.f == HIDDEN_BIT && v.e > MIN_EXP + 1 {
        DiyFp {
            f: (v.f << 2) - 1,
            e: v.e - 2,
        }
    } else {
        DiyFp {
            f: (v.f << 1) - 1,
            e: v.e - 1,
        }
    };
    (
        DiyFp {
            f: minus.f << (minus.e - plus.e),
            e: plus.e,
        },
        plus,
    )
}

/// Cached powers of ten 10^k for k ∈ [POW10_MIN, POW10_MAX], each as a
/// normalized `(significand, exponent)` pair. Generated at compile time;
/// see [`build_pow10_cache`].
const POW10_MIN: i32 = -350;
const POW10_MAX: i32 = 350;
const POW10_COUNT: usize = (POW10_MAX - POW10_MIN + 1) as usize;
static POW10_CACHE: [(u64, i32); POW10_COUNT] = build_pow10_cache();

/// Builds the cached-power table in 127-bit fixed point.
///
/// Working representation: `value = f × 2^e` with `f` normalized to
/// `[2^126, 2^127)` in a `u128`. Stepping up multiplies by 10 via
/// `(f >> 4) * 10` (the dropped 4 bits cost < 2⁻¹²² relative error per
/// step); stepping down divides by 10 via
/// `(f / 10) << 4 + ((f % 10) << 4) / 10` (< 2 units of 2⁻¹²⁷ per
/// step). Over ≤ 350 steps the accumulated error stays below 2⁻¹¹⁴
/// relative — the final round-to-nearest 64-bit significand is exact
/// except within 2⁻¹¹⁴ of a tie, far tighter than the ≤ 1-ulp cached
/// powers the Grisu correctness argument assumes.
const fn build_pow10_cache() -> [(u64, i32); POW10_COUNT] {
    let mut table = [(0u64, 0i32); POW10_COUNT];
    // Round a 127-bit-normalized (f, e) down to a 64-bit DiyFp.
    const fn to_diy(f: u128, e: i32) -> (u64, i32) {
        let mut hi = (f >> 63) as u64;
        // Round to nearest on the dropped 63 bits.
        if (f >> 62) & 1 == 1 {
            hi = hi.wrapping_add(1);
            if hi == 0 {
                // Carried out of 64 bits: 2^64 → 2^63 with e + 1.
                return (1u64 << 63, e + 64);
            }
        }
        (hi, e + 63)
    }
    // 10^0 = 1 = 2^126 × 2^-126.
    let mut f: u128 = 1u128 << 126;
    let mut e: i32 = -126;
    table[(-POW10_MIN) as usize] = to_diy(f, e);
    let mut k: i32 = 1;
    while k <= POW10_MAX {
        // Multiply by 10, renormalize to [2^126, 2^127).
        f = (f >> 4) * 10;
        e += 4;
        while f < (1u128 << 126) {
            f <<= 1;
            e -= 1;
        }
        table[(k - POW10_MIN) as usize] = to_diy(f, e);
        k += 1;
    }
    f = 1u128 << 126;
    e = -126;
    k = -1;
    while k >= POW10_MIN {
        // Divide by 10 with 4 guard bits, renormalize.
        let q = f / 10;
        let r = f % 10;
        f = (q << 4) + (r << 4) / 10;
        e -= 4;
        if f >= (1u128 << 127) {
            f >>= 1;
            e += 1;
        }
        table[(k - POW10_MIN) as usize] = to_diy(f, e);
        k -= 1;
    }
    table
}

/// Grisu's target window for the scaled exponent: after multiplying by
/// the cached power, `w.e` must land in [ALPHA, GAMMA].
const ALPHA: i32 = -60;
const GAMMA: i32 = -32;

/// Picks the cached power 10^(-k) that scales binary exponent `e` into
/// the [ALPHA, GAMMA] window, returning `(power, k)`.
fn cached_power(e: i32) -> (DiyFp, i32) {
    // First guess from k ≈ (ALPHA - e - 63) · log10(2), then walk the
    // dense table until the window condition holds (at most a step or
    // two; the window is 28 bits wide versus log2(10) ≈ 3.3 per step).
    let mut k = ((f64::from(ALPHA - e - 63)) * core::f64::consts::LOG10_2).ceil() as i32;
    loop {
        let idx = (k - POW10_MIN) as usize;
        let (f, ce) = POW10_CACHE[idx];
        let scaled = e + ce + 64;
        if scaled < ALPHA {
            k += 1;
        } else if scaled > GAMMA {
            k -= 1;
        } else {
            return (DiyFp { f, e: ce }, -k);
        }
    }
}

/// Small exact powers of ten for the integral digit loop.
const POW10_U32: [u32; 10] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Exact powers of ten for the fractional rounding scale (`10^0` …
/// `10^19`, everything a u64 holds — up to 19 fractional digits can be
/// emitted before the loop terminates).
const POW10_U64: [u64; 20] = {
    let mut t = [1u64; 20];
    let mut i = 1;
    while i < 20 {
        t[i] = t[i - 1] * 10;
        i += 1;
    }
    t
};

/// Nudges the last emitted digit towards `w` (the exact scaled value)
/// while staying inside the rounding interval — the step that makes the
/// digits round-trip.
fn grisu_round(buf: &mut [u8], len: usize, delta: u64, mut rest: u64, ten_kappa: u64, wp_w: u64) {
    while rest < wp_w
        && delta - rest >= ten_kappa
        && (rest + ten_kappa < wp_w || wp_w - rest > rest + ten_kappa - wp_w)
    {
        buf[len - 1] -= 1;
        rest += ten_kappa;
    }
}

/// Number of decimal digits in `n` (n ≥ 1).
fn decimal_digits(n: u32) -> usize {
    let mut d = 1;
    while n >= POW10_U32[d] {
        d += 1;
        if d == POW10_U32.len() {
            break;
        }
    }
    d
}

/// Generates the shortest-within-bounds digits of `w` into `buf`,
/// returning `(digit_count, decimal_exponent_adjust)`.
fn digit_gen(w: DiyFp, mp: DiyFp, mut delta: u64, buf: &mut [u8]) -> (usize, i32) {
    let one = DiyFp {
        f: 1u64 << (-mp.e),
        e: mp.e,
    };
    let wp_w = mp.f - w.f;
    let mut p1 = (mp.f >> (-one.e)) as u32;
    let mut p2 = mp.f & (one.f - 1);
    let mut kappa = decimal_digits(p1) as i32;
    let mut len = 0usize;
    // Integral digits.
    while kappa > 0 {
        let pow = POW10_U32[(kappa - 1) as usize];
        let d = p1 / pow;
        p1 %= pow;
        if len > 0 || d > 0 {
            buf[len] = b'0' + d as u8;
            len += 1;
        }
        kappa -= 1;
        let rest = (u64::from(p1) << (-one.e)) + p2;
        if rest <= delta {
            grisu_round(
                buf,
                len,
                delta,
                rest,
                u64::from(POW10_U32[kappa as usize]) << (-one.e),
                wp_w,
            );
            return (len, kappa);
        }
    }
    // Fractional digits.
    loop {
        p2 *= 10;
        delta *= 10;
        let d = (p2 >> (-one.e)) as u8;
        if len > 0 || d > 0 {
            buf[len] = b'0' + d;
            len += 1;
        }
        p2 &= one.f - 1;
        kappa -= 1;
        if p2 < delta {
            let scale = POW10_U64[(-kappa) as usize];
            grisu_round(buf, len, delta, p2, one.f, wp_w.saturating_mul(scale));
            return (len, kappa);
        }
    }
}

/// Runs Grisu2 on a finite positive `v`: digits into `buf`, returning
/// `(digit_count, k)` with `value = 0.digits × 10^(k + digit_count)` —
/// i.e. the decimal exponent of the leading digit is `k + count - 1`.
fn grisu2(v: f64, buf: &mut [u8]) -> (usize, i32) {
    let w = DiyFp::from_f64(v);
    let (wm, wp) = normalized_boundaries(w);
    let (c_mk, k0) = cached_power(wp.e);
    let scaled_w = w.normalize().mul(c_mk);
    let mut scaled_p = wp.mul(c_mk);
    let mut scaled_m = wm.mul(c_mk);
    // Narrow the interval by one unit on each side: absorbs the ≤ 1-ulp
    // error of the cached power and the multiplications, guaranteeing
    // that any value inside still rounds back to `v`.
    scaled_p.f -= 1;
    scaled_m.f += 1;
    let delta = scaled_p.f - scaled_m.f;
    let (len, kappa) = digit_gen(scaled_w, scaled_p, delta, buf);
    (len, k0 + kappa)
}

/// Maximum bytes a formatted f64 needs:
/// `-` + 17 digits + `.` + `e-` + 3 exponent digits = 25; rounded up.
const BUF_LEN: usize = 32;

/// Reusable formatting buffer, mirroring the real ryu's API.
///
/// ```
/// let mut b = ryu::Buffer::new();
/// assert_eq!(b.format(1.5e-9), "1.5e-9");
/// assert_eq!(b.format(0.5), "5e-1");
/// assert_eq!(b.format(0.0), "0e0");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Buffer {
    bytes: [u8; BUF_LEN],
}

impl Default for Buffer {
    fn default() -> Self {
        Buffer::new()
    }
}

impl Buffer {
    /// A fresh buffer (stack-allocated, trivially copyable).
    #[must_use]
    pub fn new() -> Self {
        Buffer {
            bytes: [0; BUF_LEN],
        }
    }

    /// Formats any `f64`, spelling non-finite values `NaN` / `inf` /
    /// `-inf` (callers producing JSON must special-case those first).
    pub fn format(&mut self, v: f64) -> &str {
        if v.is_nan() {
            return "NaN";
        }
        if v.is_infinite() {
            return if v < 0.0 { "-inf" } else { "inf" };
        }
        self.format_finite(v)
    }

    /// Formats a finite `f64` in `{:e}` style: shortest digits that
    /// parse back to the same bits, as `d[.ddd]e<exp>`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is not finite.
    pub fn format_finite(&mut self, v: f64) -> &str {
        debug_assert!(v.is_finite());
        let mut pos = 0usize;
        if v.is_sign_negative() {
            self.bytes[pos] = b'-';
            pos += 1;
        }
        if v == 0.0 {
            self.bytes[pos..pos + 3].copy_from_slice(b"0e0");
            return self.as_str(pos + 3);
        }
        let mut digits = [0u8; 20];
        let (len, k) = grisu2(v.abs(), &mut digits);
        let exp = k + len as i32 - 1;
        self.bytes[pos] = digits[0];
        pos += 1;
        if len > 1 {
            self.bytes[pos] = b'.';
            pos += 1;
            self.bytes[pos..pos + len - 1].copy_from_slice(&digits[1..len]);
            pos += len - 1;
        }
        self.bytes[pos] = b'e';
        pos += 1;
        pos = write_i32(exp, &mut self.bytes, pos);
        self.as_str(pos)
    }

    fn as_str(&self, len: usize) -> &str {
        // The buffer only ever holds ASCII produced above.
        std::str::from_utf8(&self.bytes[..len]).unwrap_or("")
    }
}

/// Writes a small signed integer (decimal exponents: |n| ≤ 324) at
/// `pos`, returning the new position.
fn write_i32(n: i32, out: &mut [u8], mut pos: usize) -> usize {
    let mut v = n;
    if v < 0 {
        out[pos] = b'-';
        pos += 1;
        v = -v;
    }
    let mut tmp = [0u8; 10];
    let mut t = 0usize;
    loop {
        tmp[t] = b'0' + (v % 10) as u8;
        t += 1;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    while t > 0 {
        t -= 1;
        out[pos] = tmp[t];
        pos += 1;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(v: f64) -> String {
        Buffer::new().format(v).to_string()
    }

    #[test]
    fn zeroes_and_signs() {
        assert_eq!(fmt(0.0), "0e0");
        assert_eq!(fmt(-0.0), "-0e0");
        assert_eq!(fmt(1.0), "1e0");
        assert_eq!(fmt(-1.0), "-1e0");
    }

    #[test]
    fn non_finite_spellings() {
        assert_eq!(fmt(f64::NAN), "NaN");
        assert_eq!(fmt(f64::INFINITY), "inf");
        assert_eq!(fmt(f64::NEG_INFINITY), "-inf");
    }

    #[test]
    fn matches_rust_e_format_on_simple_values() {
        // On values where shortest representations are unambiguous the
        // output is byte-identical to `format!("{v:e}")`.
        for v in [
            1.0, -1.0, 0.5, 1.5e-9, 2.5e3, 1e300, 1e-300, 3.25625, 123.456, 6.02e23, 1e-45,
        ] {
            assert_eq!(fmt(v), format!("{v:e}"), "{v}");
        }
    }

    #[test]
    fn extremes_round_trip() {
        for v in [
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324,               // smallest subnormal
            2.2250738585072e-308, // near the subnormal boundary
            f64::EPSILON,
            1.0 + f64::EPSILON,
        ] {
            let s = fmt(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v:e} -> {s}");
        }
    }

    #[test]
    fn pow10_cache_agrees_with_exact_small_powers() {
        // 10^k fits in a u64 through k = 19, and the 127-bit build is
        // exact there (5^k still has ≥ 63 trailing zero bits after
        // normalization) — so the cached entry must equal the exactly
        // normalized value, with the exact exponent.
        for k in 0..=19i32 {
            let exact: u64 = 10u64.pow(k as u32);
            let lz = exact.leading_zeros();
            let (f, e) = POW10_CACHE[(k - POW10_MIN) as usize];
            assert_eq!(f, exact << lz, "10^{k} significand");
            assert_eq!(e, -(lz as i32), "10^{k} exponent");
        }
    }

    #[test]
    fn pow10_cache_magnitudes_are_right() {
        // Every cached (f, e) must satisfy f × 2^e ≈ 10^k to ~1e-12.
        for k in (POW10_MIN..=POW10_MAX).step_by(7) {
            let (f, e) = POW10_CACHE[(k - POW10_MIN) as usize];
            assert!(f.leading_zeros() == 0, "10^{k} not normalized");
            let log2 = (f as f64).log2() + f64::from(e);
            let expect = f64::from(k) * std::f64::consts::LOG2_10;
            assert!(
                (log2 - expect).abs() < 1e-9,
                "10^{k}: log2 {log2} vs {expect}"
            );
        }
    }

    #[test]
    fn exhaustive_round_trip_on_pseudorandom_bits() {
        // splitmix64 over raw bit patterns: every finite pattern must
        // round-trip bit-exactly through format → parse.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut buf = Buffer::new();
        let mut tested = 0u32;
        while tested < 20_000 {
            let v = f64::from_bits(next());
            if !v.is_finite() {
                continue;
            }
            tested += 1;
            let s = buf.format(v);
            let back: f64 = s.parse().unwrap_or(f64::NAN);
            assert_eq!(back.to_bits(), v.to_bits(), "{v:e} -> {s}");
        }
    }

    #[test]
    fn round_trip_across_all_binades() {
        // One value per binary exponent, plus boundary-of-binade cases
        // (v.f == HIDDEN_BIT triggers the asymmetric lower gap).
        let mut buf = Buffer::new();
        for exp_bits in 1..2047u64 {
            for frac in [
                0u64,
                1,
                (1 << 52) - 1,
                0x000F_5678_9ABC_DEF0 & ((1 << 52) - 1),
            ] {
                let v = f64::from_bits((exp_bits << 52) | frac);
                let s = buf.format(v);
                let back: f64 = s.parse().unwrap_or(f64::NAN);
                assert_eq!(back.to_bits(), v.to_bits(), "{v:e} -> {s}");
            }
        }
    }

    #[test]
    fn subnormals_round_trip() {
        let mut buf = Buffer::new();
        for frac in [1u64, 2, 3, 0xFFFFF, (1 << 52) - 1] {
            let v = f64::from_bits(frac);
            let s = buf.format(v);
            let back: f64 = s.parse().unwrap_or(f64::NAN);
            assert_eq!(back.to_bits(), v.to_bits(), "{v:e} -> {s}");
        }
    }

    #[test]
    fn output_is_valid_json_number_grammar() {
        // digits, optional single '.', 'e', optional '-', digits.
        let mut buf = Buffer::new();
        for v in [1.0, -2.5, 3.25625e-12, 9.999999999999999e22, -5e-324] {
            let s = buf.format(v);
            let rest = s.strip_prefix('-').unwrap_or(s);
            let (mant, exp) = rest.split_once('e').expect("has exponent");
            let exp = exp.strip_prefix('-').unwrap_or(exp);
            assert!(
                !exp.is_empty() && exp.bytes().all(|b| b.is_ascii_digit()),
                "{s}"
            );
            let mant_no_dot = mant.replacen('.', "", 1);
            assert!(
                !mant_no_dot.is_empty() && mant_no_dot.bytes().all(|b| b.is_ascii_digit()),
                "{s}"
            );
            assert!(!mant.starts_with('.') && !mant.ends_with('.'), "{s}");
        }
    }
}
