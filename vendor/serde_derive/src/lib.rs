//! Offline stand-in for `serde_derive`.
//!
//! This container has no network access and no cargo registry cache, so the
//! real serde cannot be fetched; this crate (together with `vendor/serde`
//! and `vendor/serde_json`) supplies the small subset the workspace uses.
//! The derive is hand-rolled over `proc_macro::TokenStream` (no `syn` /
//! `quote`) and supports:
//!
//! - named-field structs (with `#[serde(skip)]` on individual fields:
//!   skipped on serialize, filled from `Default` on deserialize),
//! - tuple structs (newtypes serialize transparently; wider tuples as
//!   JSON arrays),
//! - enums with unit, tuple, and struct variants using serde's external
//!   tagging (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`).
//!
//! Generics are not supported — no type in this workspace derives serde on
//! a generic item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    /// `struct S { a: T, b: U }`
    Named(Vec<Field>),
    /// `struct S(T, U);` — count of fields.
    Tuple(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Returns true when an attribute group (the `[...]` tokens) is
/// `serde(skip)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Parses the fields of a braced group: `attrs* vis? name: Type,`*.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = group.stream().into_iter().peekable();
    loop {
        let mut skip = false;
        // Attributes.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.next() {
                        if attr_is_serde_skip(&g) {
                            skip = true;
                        }
                    }
                }
                _ => break,
            }
        }
        // Visibility.
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                it.next();
            }
        }
        // Field name.
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        // Skip `:` then the type up to a top-level comma (tracking
        // angle-bracket depth — generic arguments contain commas).
        let mut angle: i32 = 0;
        for t in it.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the fields of a parenthesized (tuple) group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut angle: i32 = 0;
    let mut commas = 0usize;
    let mut any = false;
    for t in group.stream() {
        any = true;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => commas += 1,
            _ => {}
        }
    }
    if !any {
        return 0;
    }
    // A trailing comma would overcount; tuple structs in this workspace
    // don't use one, but guard anyway by checking the last token.
    let last_is_comma = group
        .stream()
        .into_iter()
        .last()
        .is_some_and(|t| matches!(&t, TokenTree::Punct(p) if p.as_char() == ','));
    commas + usize::from(!last_is_comma)
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = group.stream().into_iter().peekable();
    loop {
        // Attributes (doc comments etc.).
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next(); // the [...] group
                }
                _ => break,
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                it.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                it.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume the separating comma, if any.
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    // Skip attributes and visibility until `struct` / `enum`.
    let is_enum = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => {}
            None => panic!("serde derive: no struct/enum found"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported");
    }
    let shape = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::Enum(parse_variants(&g))
            } else {
                Shape::Named(parse_named_fields(&g))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(&g))
        }
        other => panic!("serde derive: unexpected item body {other:?}"),
    };
    Item { name, shape }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s = String::from(
                "let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.push((\"{0}\".to_string(), ::serde::Serialize::to_content(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Content::Map(m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_content(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Seq(vec![{}]))]),\n",
                            pats.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pats: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let vals: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_content({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Map(vec![{}]))]),\n",
                            pats.join(", "),
                            vals.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!("{0}: ::serde::de_field(m, \"{0}\")?,\n", f.name));
                }
            }
            format!(
                "let m = c.as_map_slice().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Shape::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                .collect();
            format!(
                "let s = c.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for tuple struct {name}\"))?;\n\
                 if s.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(v)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_content(&s[{i}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for variant {vn}\"))?;\n\
                             if s.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for variant {vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            gets.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::de_field(m2, \"{0}\")?,\n",
                                    f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let m2 = v.as_map_slice().ok_or_else(|| ::serde::Error::custom(\"expected map for variant {vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n",
                        ));
                    }
                }
            }
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(&format!(\"unknown variant '{{other}}' for {name}\"))),\n}},\n\
                 ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                 let (k, v) = &m[0];\n\
                 let _ = v;\n\
                 match k.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(&format!(\"unknown variant '{{other}}' for {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or single-key map for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl must parse")
}
