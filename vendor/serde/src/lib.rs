//! Offline stand-in for `serde`.
//!
//! The build container has no network access and no cargo registry cache,
//! so the real serde cannot be fetched. This crate supplies the subset the
//! workspace uses: `Serialize` / `Deserialize` traits, derive macros
//! (re-exported from the vendored `serde_derive`), and impls for the
//! standard types that appear in serialized models.
//!
//! Instead of serde's visitor architecture, both traits go through a
//! JSON-shaped [`Content`] tree; `serde_json` (also vendored) renders that
//! tree to text and parses it back. JSON encodings match real serde's
//! conventions (externally tagged enums, transparent newtypes, `null` for
//! `None`), so artifacts written by this stand-in remain readable if the
//! real crates are ever restored.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model both traits target.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, preserving insertion order (deterministic output).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// True for `Content::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Signed integer value, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(v) => Some(*v),
            Content::U64(v) => i64::try_from(*v).ok(),
            Content::F64(v) if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 => {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// Unsigned integer value, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) => u64::try_from(*v).ok(),
            Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 1.8446744073709552e19 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(v) => Some(*v),
            Content::I64(v) => Some(*v as f64),
            Content::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, when this is an array.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Object entries, when this is an object.
    pub fn as_map_slice(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map_slice()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts to the data-model tree.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Converts from the data-model tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match the expected shape.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

/// Looks up and deserializes a required struct field.
///
/// # Errors
///
/// Returns [`Error`] when the key is missing or its value mismatches.
pub fn de_field<T: Deserialize>(m: &[(String, Content)], key: &str) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_content(v).map_err(|e| Error::custom(format!("field '{key}': {e}")))
        }
        None => Err(Error::custom(format!("missing field '{key}'"))),
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        if c.is_null() {
            // Real serde_json writes non-finite floats as null.
            return Ok(f64::NAN);
        }
        c.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(f64::from_content(c)? as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        if c.is_null() {
            Ok(None)
        } else {
            T::from_content(c).map(Some)
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_map_slice()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($($idx:tt : $t:ident),+ ; $len:expr) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let s = c.as_seq().ok_or_else(|| Error::custom("expected array for tuple"))?;
                if s.len() != $len {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($t::from_content(&s[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(0: A; 1);
impl_tuple!(0: A, 1: B; 2);
impl_tuple!(0: A, 1: B, 2: C; 3);
impl_tuple!(0: A, 1: B, 2: C, 3: D; 4);
