//! Offline stand-in for `proptest`.
//!
//! Supplies the subset this workspace uses: the [`Strategy`] trait with
//! range and `prop::collection::vec` strategies, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros. Each test runs a fixed number
//! of deterministic random cases (seeded from the test name, so failures
//! reproduce); there is no shrinking — the failing values appear in the
//! panic message instead.

use std::ops::Range;

/// Number of random cases each `proptest!` test executes.
pub const CASES: u64 = 48;

/// Deterministic splitmix64 generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Seeds deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span.max(1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::` namespace alias, as in real proptest's prelude.
pub mod prop {
    pub use crate::collection;
}

/// The usual imports.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts within a proptest case (plain panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(e) = result {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs:",
                            stringify!($name)
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)*
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn coeffs() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-1.0..1.0f64, 1..4)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -2.0..3.0f64, n in 1usize..5, v in coeffs()) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 4);
            for c in &v {
                prop_assert!((-1.0..1.0).contains(c), "coeff {c}");
            }
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
