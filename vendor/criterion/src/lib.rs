//! Offline stand-in for `criterion`.
//!
//! Supplies the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! over a simple median-of-samples wall-clock timer that prints one line
//! per benchmark. No statistics engine, plots, or saved baselines.

use std::fmt;
use std::time::Instant;

/// Prevents the optimizer from discarding a value (re-export of the std
/// hint, which is what recent criterion versions use internally).
pub use std::hint::black_box;

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration, filled by `iter`.
    result_secs: f64,
}

impl Bencher {
    /// Times the closure: per sample, runs as many iterations as fit a
    /// small time budget and records seconds/iteration; the median over
    /// samples is reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate the iteration count to ~10 ms per sample.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.01 / once) as usize).clamp(1, 1_000_000);
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        self.result_secs = per_iter[per_iter.len() / 2];
    }
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result_secs: f64::NAN,
    };
    f(&mut b);
    println!("{label:<50} {:>12}/iter", human_time(b.result_secs));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.samples, &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (the stand-in prints as it goes; nothing to flush).
    pub fn finish(self) {}
}

/// Entry point mirroring criterion's `Criterion` struct.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }

    /// Accepted for API compatibility; the stand-in has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
