//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`Content`] tree to JSON text and parses
//! JSON text back. Floats are written with the vendored `ryu` formatter
//! (shortest round-trip, `{:e}`-shaped), so values survive a round trip
//! bit-exactly without allocating per float; non-finite floats serialize
//! as `null`, matching real serde_json.
//!
//! Besides the `String`-returning [`to_string`] API, the byte-level
//! writers ([`write_value`], [`write_f64`], [`write_escaped_str`]) are
//! public so hot paths (the serve crate's response encoders) can stream
//! JSON into a reused `Vec<u8>` instead of building intermediate trees
//! and strings.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Re-export of the data-model tree under serde_json's conventional name.
pub type Value = Content;

/// JSON error (parse or shape mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    write_value(&value.to_content(), &mut out);
    // The writer only emits valid UTF-8 (escapes + str pushes).
    String::from_utf8(out).map_err(|e| Error(format!("writer produced invalid UTF-8: {e}")))
}

/// Serializes a value to indented JSON text.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    write_content_pretty(&value.to_content(), &mut out, 0);
    String::from_utf8(out).map_err(|e| Error(format!("writer produced invalid UTF-8: {e}")))
}

/// Converts a value to a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors serde_json.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match the target type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_content(&value)?)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&v)?)
}

/// Parses JSON from UTF-8 bytes (e.g. a reused output buffer).
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Appends a JSON string literal (quotes and escapes included) to a byte
/// buffer. Runs of plain bytes are copied in bulk.
pub fn write_escaped_str(s: &str, out: &mut Vec<u8>) {
    out.push(b'"');
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let esc: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            0x08 => b"\\b",
            0x0C => b"\\f",
            b if b < 0x20 => {
                out.extend_from_slice(&bytes[start..i]);
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.extend_from_slice(b"\\u00");
                out.push(HEX[usize::from(b >> 4)]);
                out.push(HEX[usize::from(b & 0xF)]);
                start = i + 1;
                continue;
            }
            _ => continue,
        };
        out.extend_from_slice(&bytes[start..i]);
        out.extend_from_slice(esc);
        start = i + 1;
    }
    out.extend_from_slice(&bytes[start..]);
    out.push(b'"');
}

/// Appends one `f64` as a JSON number (shortest round-trip via the
/// vendored `ryu`); non-finite values become `null`, matching real
/// serde_json. This is the single float→text path for the workspace.
pub fn write_f64(v: f64, out: &mut Vec<u8>) {
    if v.is_finite() {
        let mut buf = ryu::Buffer::new();
        out.extend_from_slice(buf.format_finite(v).as_bytes());
    } else {
        out.extend_from_slice(b"null");
    }
}

/// Appends a [`Content`] tree as compact JSON to a byte buffer — the
/// allocation-free core behind [`to_string`], usable directly with a
/// reused buffer.
pub fn write_value(c: &Content, out: &mut Vec<u8>) {
    match c {
        Content::Null => out.extend_from_slice(b"null"),
        Content::Bool(b) => out.extend_from_slice(if *b { b"true".as_ref() } else { b"false" }),
        Content::I64(v) => write_int(*v < 0, v.unsigned_abs(), out),
        Content::U64(v) => write_int(false, *v, out),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped_str(s, out),
        Content::Seq(items) => {
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_value(item, out);
            }
            out.push(b']');
        }
        Content::Map(entries) => {
            out.push(b'{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_escaped_str(k, out);
                out.push(b':');
                write_value(v, out);
            }
            out.push(b'}');
        }
    }
}

/// Appends a decimal integer without allocating.
fn write_int(neg: bool, v: u64, out: &mut Vec<u8>) {
    if neg {
        out.push(b'-');
    }
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    let mut v = v;
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}

fn write_content_pretty(c: &Content, out: &mut Vec<u8>, indent: usize) {
    fn pad(out: &mut Vec<u8>, n: usize) {
        for _ in 0..n {
            out.extend_from_slice(b"  ");
        }
    }
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.extend_from_slice(b"[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.extend_from_slice(b",\n");
                }
                pad(out, indent + 1);
                write_content_pretty(item, out, indent + 1);
            }
            out.push(b'\n');
            pad(out, indent);
            out.push(b']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.extend_from_slice(b"{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.extend_from_slice(b",\n");
                }
                pad(out, indent + 1);
                write_escaped_str(k, out);
                out.extend_from_slice(b": ");
                write_content_pretty(v, out, indent + 1);
            }
            out.push(b'\n');
            pad(out, indent);
            out.push(b'}');
        }
        other => write_value(other, out),
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, v: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(Error("recursion limit exceeded".to_string()));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => {
                            return Err(Error(format!("expected ',' or ']' at byte {}", self.pos)))
                        }
                    }
                }
                self.depth -= 1;
                Ok(Content::Seq(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => {
                            return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos)))
                        }
                    }
                }
                self.depth -= 1;
                Ok(Content::Map(entries))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00).ok_or_else(|| {
                                            Error("invalid low surrogate".to_string())
                                        })?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(ch.ok_or_else(|| Error("invalid unicode escape".to_string()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let text =
            std::str::from_utf8(chunk).map_err(|_| Error("invalid \\u escape".to_string()))?;
        let v =
            u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for v in [
            0.0f64,
            1.0,
            -1.5e-9,
            3.25625,
            1e300,
            -0.0,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{json}");
        }
        let json = to_string(&f64::NAN).unwrap();
        assert_eq!(json, "null");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn round_trip_collections() {
        let v: Vec<(Vec<u8>, f64)> = vec![(vec![1, 2], 0.5), (vec![], -3.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(Vec<u8>, f64)> = from_str(&json).unwrap();
        assert_eq!(v, back);
        let opt: Option<String> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<String> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}\u{08}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
        // Parse surrogate pairs produced by other writers.
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str::<Value>(&deep).is_err());
    }

    #[test]
    fn pretty_prints() {
        let v: Vec<u32> = vec![1, 2];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
