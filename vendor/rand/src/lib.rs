//! Offline stand-in for `rand`.
//!
//! Supplies the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over `Range<f64>`
//! and integer ranges. The core generator is splitmix64 — statistically
//! fine for examples and tests, not cryptographic.

use std::ops::Range;

/// Core source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the rand 0.8 entry point used here.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, matching the rand 0.8 names used here.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64
    where
        Self: Sized,
    {
        (0.0..1.0).sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64-based stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state.wrapping_add(0x9E3779B97F4A7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen_range(2.0..3.0);
            let y: f64 = b.gen_range(2.0..3.0);
            assert_eq!(x, y);
            assert!((2.0..3.0).contains(&x));
            let n = a.gen_range(1usize..5);
            b.gen_range(1usize..5);
            assert!((1..5).contains(&n));
        }
    }
}
