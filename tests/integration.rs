//! Cross-crate integration tests: the full AWEsymbolic pipeline against
//! every independent reference implementation in the workspace (exact
//! symbolic algebra, direct AC analysis, transient simulation).

use awesymbolic::prelude::*;
use awesymbolic::{exact, transient, IntegrationMethod, Mna, TransientOptions, Waveform};

/// Compiled symbolic model vs exact symbolic algebra vs direct AC analysis
/// on the Fig. 1 circuit — three fully independent code paths.
#[test]
fn three_way_agreement_on_fig1() {
    let w = generators::fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
    let c = &w.circuit;
    let bindings = [
        SymbolBinding::capacitance("c1", vec![c.find("C1").unwrap()]),
        SymbolBinding::capacitance("c2", vec![c.find("C2").unwrap()]),
    ];
    let model = CompiledModel::build(c, w.input, w.output, &bindings, 2).unwrap();
    let h_exact = exact::exact_transfer(c, w.input, w.output, &bindings).unwrap();

    for vals in [[1e-9, 3e-9], [0.4e-9, 0.8e-9], [5e-9, 1e-9]] {
        // Moments: compiled vs exact series.
        let m_model = model.eval_moments(&vals);
        let m_exact = h_exact.moments(&vals, 4);
        for (a, b) in m_model.iter().zip(m_exact.iter()) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1e-30), "{a} vs {b}");
        }
        // Frequency response: ROM vs direct AC on a substituted circuit.
        let mut c2 = c.clone();
        c2.set_value(c.find("C1").unwrap(), vals[0]);
        c2.set_value(c.find("C2").unwrap(), vals[1]);
        let mna = Mna::build(&c2).unwrap();
        let rom = model.rom(&vals).unwrap();
        let wc = rom.dominant_pole().unwrap().abs();
        let omegas = [0.1 * wc, wc, 3.0 * wc];
        let truth = mna.ac_transfer(w.input, w.output, &omegas).unwrap();
        for (o, t) in omegas.iter().zip(truth.iter()) {
            let h = rom.eval_jw(*o);
            // Order-2 model of an order-2 circuit: exact.
            assert!((h - *t).abs() < 1e-6 * t.abs(), "ω={o}: {h} vs {t}");
        }
    }
}

/// Compiled model step response vs trapezoidal transient simulation on an
/// RC ladder with a symbolic driver section.
#[test]
fn compiled_step_response_matches_transient() {
    let w = generators::rc_ladder(40, 50.0, 1e-12);
    let c = &w.circuit;
    let r1 = c.find("R1").unwrap();
    let model = CompiledModel::build(
        c,
        w.input,
        w.output,
        &[SymbolBinding::resistance("r1", vec![r1])],
        3,
    )
    .unwrap();

    for r in [25.0, 50.0, 200.0] {
        let rom = model.rom(&[r]).unwrap();
        let tau = 1.0 / rom.dominant_pole().unwrap().abs();
        let mut c2 = c.clone();
        c2.set_value(r1, r);
        let mna = Mna::build(&c2).unwrap();
        let res = transient(
            &mna,
            w.input,
            &Waveform::Step { amplitude: 1.0 },
            &TransientOptions {
                t_stop: 5.0 * tau,
                dt: tau / 500.0,
                method: IntegrationMethod::Trapezoidal,
            },
            &[w.output],
        )
        .unwrap();
        for (t, v) in res.times.iter().zip(res.traces[0].iter()).step_by(100) {
            let vr = rom.step_response(*t);
            assert!((vr - v).abs() < 0.02, "r={r} t={t}: {vr} vs {v}");
        }
    }
}

/// The paper's headline property at system scale: on the 741, the compiled
/// model's reduced-order poles equal a full AWE analysis' poles at every
/// probed point of the symbol plane.
#[test]
fn opamp_poles_identical_to_full_awe_over_plane() {
    let amp = generators::opamp741();
    let c = &amp.circuit;
    let model = SymbolicAwe::new(c, amp.input, amp.output)
        .order(2)
        .symbol_named("g_out_q14", "ro_q14", SymbolRole::Conductance)
        .unwrap()
        .symbol_named("c_comp", "c_comp", SymbolRole::Capacitance)
        .unwrap()
        .compile()
        .unwrap();
    let g0 = model.nominal()[0];
    let c0 = model.nominal()[1];
    for (gs, cs) in [(0.5, 0.5), (1.0, 2.0), (3.0, 0.7)] {
        let vals = [g0 * gs, c0 * cs];
        let rom_sym = model.rom_exact_order(&vals).unwrap();
        let mut c2 = c.clone();
        c2.set_value(amp.ro_q14, 1.0 / vals[0]);
        c2.set_value(amp.c_comp, vals[1]);
        let rom_ref = AweAnalysis::new(&c2, amp.input, amp.output)
            .unwrap()
            .rom(2)
            .unwrap();
        let mut a: Vec<f64> = rom_sym.poles().iter().map(|p| p.re).collect();
        let mut b: Vec<f64> = rom_ref.poles().iter().map(|p| p.re).collect();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5 * y.abs(), "{x} vs {y} at {vals:?}");
        }
    }
}

/// Netlist round trip: parse → analyze must equal generate → analyze.
#[test]
fn spice_round_trip_preserves_analysis() {
    let w = generators::rc_ladder(10, 100.0, 1e-12);
    let text = w.circuit.to_spice();
    let parsed = awesymbolic::parse_spice(&text).unwrap();
    let input = parsed.find("vin").unwrap();
    let output = parsed.find_node(w.circuit.node_name(w.output)).unwrap();
    let a1 = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
    let a2 = AweAnalysis::new(&parsed, input, output).unwrap();
    let m1 = a1.moments(6).unwrap().m;
    let m2 = a2.moments(6).unwrap().m;
    for (x, y) in m1.iter().zip(m2.iter()) {
        assert!((x - y).abs() <= 1e-12 * y.abs());
    }
}

/// Serialized model reloads and evaluates identically (the "stored timing
/// model" use case).
#[test]
fn model_serialization_round_trip() {
    let w = generators::rc_tree(4, 20.0, 0.2e-12);
    let c = &w.circuit;
    let rdrv = c.find("Rdrv").unwrap();
    let model = CompiledModel::build(
        c,
        w.input,
        w.output,
        &[SymbolBinding::resistance("rdrv", vec![rdrv])],
        2,
    )
    .unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let back: CompiledModel = serde_json::from_str(&json).unwrap();
    for r in [5.0, 20.0, 500.0] {
        assert_eq!(model.eval_moments(&[r]), back.eval_moments(&[r]));
    }
}

/// AWEsensitivity → auto symbols → compile, end to end on the op-amp.
#[test]
fn auto_symbol_pipeline_on_opamp() {
    let amp = generators::opamp741();
    let model = SymbolicAwe::new(&amp.circuit, amp.input, amp.output)
        .order(2)
        .auto_symbols(2)
        .unwrap()
        .compile()
        .unwrap();
    assert_eq!(model.symbols().len(), 2);
    let rom = model.rom(model.nominal()).unwrap();
    assert!(rom.dc_gain().abs() > 1e3);
    // The auto-selected model still matches a full analysis at nominal.
    let awe = AweAnalysis::new(&amp.circuit, amp.input, amp.output).unwrap();
    let m_ref = awe.moments(4).unwrap().m;
    let m_sym = model.eval_moments(model.nominal());
    for (a, b) in m_sym.iter().zip(m_ref.iter()) {
        assert!((a - b).abs() < 1e-6 * b.abs());
    }
}
