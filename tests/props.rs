//! Property-based tests over the core data structures and the AWEsymbolic
//! invariants.

use awesymbolic::prelude::*;
use awesymbolic::{MPoly, ModelOptions, OptLevel, Poly, SymbolSet};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Every bundled example netlist compiled at [`OptLevel::None`] and
/// [`OptLevel::Full`], built once and shared across property cases.
fn optimizer_pairs() -> &'static [(&'static str, CompiledModel, CompiledModel)] {
    static PAIRS: OnceLock<Vec<(&'static str, CompiledModel, CompiledModel)>> = OnceLock::new();
    PAIRS.get_or_init(|| {
        let mut pairs = Vec::new();

        let w = generators::fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let bindings = [
            SymbolBinding::capacitance("c1", vec![w.circuit.find("C1").unwrap()]),
            SymbolBinding::resistance("r2", vec![w.circuit.find("R2").unwrap()]),
        ];
        let build = |level| {
            CompiledModel::build_with_options(
                &w.circuit,
                w.input,
                w.output,
                &bindings,
                ModelOptions::order(2).with_opt_level(level),
            )
            .unwrap()
        };
        pairs.push(("fig1_rc", build(OptLevel::None), build(OptLevel::Full)));

        let amp = generators::opamp741();
        let bindings = [
            SymbolBinding::conductance("g_out_q14", vec![amp.ro_q14]),
            SymbolBinding::capacitance("c_comp", vec![amp.c_comp]),
        ];
        let build = |level| {
            CompiledModel::build_with_options(
                &amp.circuit,
                amp.input,
                amp.output,
                &bindings,
                ModelOptions::order(2).with_opt_level(level),
            )
            .unwrap()
        };
        pairs.push(("opamp741", build(OptLevel::None), build(OptLevel::Full)));

        let spec = generators::CoupledLineSpec {
            segments: 40,
            ..Default::default()
        };
        let lines = generators::coupled_lines(&spec);
        let bindings = [
            SymbolBinding::resistance("rdrv", lines.rdrv.to_vec()),
            SymbolBinding::capacitance("cload", lines.cload.to_vec()),
        ];
        let build = |level| {
            CompiledModel::build_with_options(
                &lines.circuit,
                lines.input,
                lines.victim_out,
                &bindings,
                ModelOptions::order(2).with_opt_level(level),
            )
            .unwrap()
        };
        pairs.push((
            "coupled_lines_40seg",
            build(OptLevel::None),
            build(OptLevel::Full),
        ));

        pairs
    })
}

/// Golden op counts for the bundled netlists: the raw (unoptimized) tape
/// size, and the size after the full pass pipeline. These pin the
/// optimizer's output — an unintentional regression in folding, CSE,
/// fusion, or DCE changes one of these numbers.
#[test]
fn golden_op_counts() {
    let expected = [
        ("fig1_rc", 62, 46),
        ("opamp741", 113, 86),
        ("coupled_lines_40seg", 157, 118),
    ];
    for ((name, raw, opt), (ename, eraw, eopt)) in optimizer_pairs().iter().zip(expected) {
        assert_eq!(*name, ename);
        assert_eq!(raw.op_count(), eraw, "{name}: raw op count drifted");
        assert_eq!(opt.op_count(), eopt, "{name}: optimized op count drifted");
        assert_eq!(opt.raw_op_count(), eraw, "{name}: raw_op_count mismatch");
        let reduction = 1.0 - eopt as f64 / eraw as f64;
        assert!(
            reduction >= 0.20,
            "{name}: optimizer cut only {:.1}% (< 20%)",
            100.0 * reduction
        );
    }
}

fn small_coeffs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, 1..6)
}

proptest! {
    /// Polynomial (de)composition: building from roots and solving back
    /// recovers the roots.
    #[test]
    fn poly_roots_round_trip(roots in prop::collection::vec(-50.0..-0.5f64, 1..6)) {
        let p = Poly::from_roots(
            &roots.iter().map(|&r| awesymbolic::Complex64::from_re(r)).collect::<Vec<_>>(),
        );
        let found = p.roots().unwrap();
        for r in &roots {
            let best = found.iter().map(|f| (f.re - r).abs() / r.abs()).fold(f64::MAX, f64::min);
            prop_assert!(best < 1e-4, "root {r} missing: {found:?}");
        }
    }

    /// Horner evaluation is linear in the coefficients.
    #[test]
    fn poly_eval_linearity(a in small_coeffs(), b in small_coeffs(), x in -3.0..3.0f64) {
        let pa = Poly::new(a.clone());
        let pb = Poly::new(b.clone());
        let sum = pa.add(&pb);
        prop_assert!((sum.eval(x) - (pa.eval(x) + pb.eval(x))).abs() < 1e-9);
    }

    /// Multivariate polynomial ring laws, checked by evaluation.
    #[test]
    fn mpoly_ring_laws(
        ca in -5.0..5.0f64,
        cb in -5.0..5.0f64,
        x in -2.0..2.0f64,
        y in -2.0..2.0f64,
    ) {
        let mut s = SymbolSet::new();
        let sx = s.intern("x");
        let sy = s.intern("y");
        let a = MPoly::var(&s, sx).scale(ca).add(&MPoly::var(&s, sy));
        let b = MPoly::var(&s, sy).scale(cb).add(&MPoly::one(2));
        let p = [x, y];
        prop_assert!((a.mul(&b).eval(&p) - a.eval(&p) * b.eval(&p)).abs() < 1e-9);
        prop_assert!((a.add(&b).eval(&p) - (a.eval(&p) + b.eval(&p))).abs() < 1e-9);
        prop_assert!(a.sub(&a).is_zero());
    }

    /// The compiled tape computes exactly what the polynomial does.
    #[test]
    fn tape_matches_polynomial(
        coeffs in prop::collection::vec(-3.0..3.0f64, 1..5),
        x in -2.0..2.0f64,
        y in -2.0..2.0f64,
    ) {
        let mut s = SymbolSet::new();
        let sx = s.intern("x");
        let sy = s.intern("y");
        // p = Σ_k c_k · x^k · y^(k mod 2)
        let mut p = MPoly::zero(2);
        for (k, &ck) in coeffs.iter().enumerate() {
            let term = MPoly::var(&s, sx)
                .pow(k as u32)
                .mul(&MPoly::var(&s, sy).pow((k % 2) as u32))
                .scale(ck);
            p = p.add(&term);
        }
        let mut g = awesymbolic::ExprGraph::new(2);
        let id = g.poly(&p);
        let f = g.compile(&[id]);
        let direct = p.eval(&[x, y]);
        let taped = f.eval(&[x, y])[0];
        prop_assert!((direct - taped).abs() < 1e-9 * (1.0 + direct.abs()));
    }

    /// AWE invariant: the moments of an RC ladder alternate in sign and
    /// m0 = 1 (unit DC transfer), for any positive R/C values.
    #[test]
    fn ladder_moment_signs(r in 1.0..500.0f64, c in 0.1e-12..10e-12f64, n in 2usize..20) {
        let w = generators::rc_ladder(n, r, c);
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
        let m = awe.moments(6).unwrap().m;
        prop_assert!((m[0] - 1.0).abs() < 1e-9);
        for (k, &mk) in m.iter().enumerate().skip(1) {
            let expected_sign = if k % 2 == 1 { -1.0 } else { 1.0 };
            prop_assert!(mk * expected_sign > 0.0, "m{k} = {mk}");
        }
    }

    /// AWEsymbolic invariant: the compiled model equals the full analysis
    /// at random symbol values (paper: "results are identical").
    #[test]
    fn compiled_equals_reference(
        c1_scale in 0.2..5.0f64,
        r2_scale in 0.2..5.0f64,
    ) {
        let w = generators::fig1_rc(1e-3, 2e-3, 1e-9, 3e-9);
        let c = &w.circuit;
        let c1 = c.find("C1").unwrap();
        let r2 = c.find("R2").unwrap();
        let model = CompiledModel::build(
            c,
            w.input,
            w.output,
            &[
                SymbolBinding::capacitance("c1", vec![c1]),
                SymbolBinding::resistance("r2", vec![r2]),
            ],
            2,
        )
        .unwrap();
        let vals = [1e-9 * c1_scale, 2e3 * r2_scale];
        let mut c2 = c.clone();
        c2.set_value(c1, vals[0]);
        c2.set_value(r2, vals[1]);
        let m_ref = AweAnalysis::new(&c2, w.input, w.output)
            .unwrap()
            .moments(4)
            .unwrap()
            .m;
        let m_sym = model.eval_moments(&vals);
        for (a, b) in m_sym.iter().zip(m_ref.iter()) {
            prop_assert!((a - b).abs() < 1e-8 * b.abs().max(1e-30), "{a} vs {b}");
        }
    }

    /// Optimizer soundness: on every bundled example netlist, the fully
    /// optimized tape and the unoptimized tape agree to 1e-12 relative at
    /// random symbol values. The pass pipeline only applies IEEE-safe
    /// rewrites, so the paths should in fact be bit-close; 1e-12 leaves
    /// headroom for the one reassociation fusion performs (a·b then +c).
    #[test]
    fn optimized_tape_matches_unoptimized(s0 in 0.2..5.0f64, s1 in 0.2..5.0f64) {
        for (name, raw, opt) in optimizer_pairs() {
            let vals: Vec<f64> = raw
                .nominal()
                .iter()
                .zip([s0, s1])
                .map(|(&n, s)| n * s)
                .collect();
            let a = raw.eval_moments(&vals);
            let b = opt.eval_moments(&vals);
            for (k, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert!(
                    (x - y).abs() <= 1e-12 * x.abs().max(1e-300),
                    "{name} m{k}: {x} vs {y}"
                );
            }
        }
    }

    /// Stability invariant: passive RC ladders always yield stable ROMs.
    #[test]
    fn rc_ladder_roms_are_stable(r in 1.0..1e3f64, c in 0.1e-12..5e-12f64, q in 1usize..5) {
        let w = generators::rc_ladder(25, r, c);
        let awe = AweAnalysis::new(&w.circuit, w.input, w.output).unwrap();
        let rom = awe.rom_stable(q).unwrap();
        prop_assert!(rom.is_stable());
        for p in rom.poles() {
            prop_assert!(p.re < 0.0);
        }
        // The *dominant* pole of an RC circuit is real (higher Padé poles
        // may pair up as complex approximation artifacts).
        let dom = rom.dominant_pole().unwrap();
        prop_assert!(dom.im.abs() < 1e-3 * dom.re.abs(), "dominant {dom}");
    }

    /// Netlist value parser accepts what the writer produces.
    #[test]
    fn value_format_round_trip(v in 1e-15..1e6f64) {
        let text = format!("{v:e}");
        let parsed = awesymbolic::parse_value(&text).unwrap();
        prop_assert!((parsed - v).abs() <= 1e-12 * v);
    }

    /// Sparse LU agrees with dense LU on random diagonally-bumped sparse
    /// matrices of random pattern.
    #[test]
    fn sparse_lu_matches_dense(
        n in 3usize..12,
        seed in 0u64..1000,
        density in 0.15..0.6f64,
    ) {
        use awesym_sparse::{SparseLu, LuOptions, Triplets};
        // xorshift PRNG so the case is reproducible from `seed`.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t = Triplets::new(n);
        for i in 0..n {
            t.push(i, i, 2.0 + rnd());
            for j in 0..n {
                if i != j && rnd() < density {
                    t.push(i, j, rnd() - 0.5);
                }
            }
        }
        let a = t.to_csc();
        let dense = awesym_linalg::Mat::from_fn(n, n, |i, j| a.get(i, j));
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let b = a.mul_vec(&x_true);
        let xs = SparseLu::factor(&a, LuOptions::default()).unwrap().solve(&b);
        let xd = dense.solve(&b).unwrap();
        for (p, q) in xs.iter().zip(xd.iter()) {
            prop_assert!((p - q).abs() < 1e-7 * (1.0 + q.abs()), "{p} vs {q}");
        }
    }

    /// Compiled tapes survive JSON serialization bit-exactly.
    #[test]
    fn tape_serde_round_trip(
        coeffs in prop::collection::vec(-5.0..5.0f64, 1..6),
        x in -2.0..2.0f64,
    ) {
        let mut g = awesymbolic::ExprGraph::new(1);
        let sym = g.sym(0);
        let mut acc = g.constant(0.0);
        for (k, &ck) in coeffs.iter().enumerate() {
            let c = g.constant(ck);
            let p = g.powi(sym, k as u32 + 1);
            let term = g.mul(c, p);
            acc = g.add(acc, term);
        }
        let f = g.compile(&[acc]);
        let json = serde_json::to_string(&f).unwrap();
        let back: awesymbolic::CompiledFn = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(f.eval(&[x])[0].to_bits(), back.eval(&[x])[0].to_bits());
    }

    /// Transient simulation of an RC ladder always settles monotonically
    /// toward the DC value for a step input (diffusive network, no L).
    #[test]
    fn ladder_transient_settles(r in 5.0..200.0f64, c in 0.1e-12..2e-12f64) {
        use awesymbolic::{transient, IntegrationMethod, Mna, TransientOptions, Waveform};
        let w = generators::rc_ladder(10, r, c);
        let mna = Mna::build(&w.circuit).unwrap();
        let tau = 10.0 * 10.0 * r * c; // ≥ Elmore horizon
        let res = transient(
            &mna,
            w.input,
            &Waveform::Step { amplitude: 1.0 },
            &TransientOptions {
                t_stop: 10.0 * tau,
                dt: tau / 100.0,
                method: IntegrationMethod::Trapezoidal,
            },
            &[w.output],
        )
        .unwrap();
        let last = *res.traces[0].last().unwrap();
        prop_assert!((last - 1.0).abs() < 1e-3, "settled at {last}");
        // Never exceeds the final value by more than integration wiggle.
        for v in &res.traces[0] {
            prop_assert!(*v < 1.0 + 1e-6);
        }
    }
}
